#include "nn/pooling.h"

namespace camal::nn {
namespace {

// One row of max pooling; records per-output argmax when am is non-null
// (the training path needs it for Backward, inference skips it).
void MaxPoolRow(const float* row, float* out, int64_t* am, int64_t l,
                int64_t lo, int64_t kernel, int64_t stride, int64_t padding) {
  for (int64_t t = 0; t < lo; ++t) {
    const int64_t start = t * stride - padding;
    const int64_t k0 = start < 0 ? -start : 0;
    int64_t best_i = start + k0;
    float best = row[best_i];
    for (int64_t k = k0 + 1; k < kernel && start + k < l; ++k) {
      if (row[start + k] > best) {
        best = row[start + k];
        best_i = start + k;
      }
    }
    out[t] = best;
    if (am != nullptr) am[t] = best_i;
  }
}

// One row of average pooling (no padding; window `kernel`, step `stride`).
void AvgPoolRow(const float* row, float* out, int64_t lo, int64_t kernel,
                int64_t stride, float inv_k) {
  for (int64_t t = 0; t < lo; ++t) {
    float acc = 0.0f;
    const int64_t start = t * stride;
    for (int64_t k = 0; k < kernel; ++k) acc += row[start + k];
    out[t] = acc * inv_k;
  }
}

}  // namespace

MaxPool1d::MaxPool1d(int64_t kernel, int64_t stride, int64_t padding)
    : kernel_(kernel), stride_(stride), padding_(padding) {
  CAMAL_CHECK_GT(kernel, 0);
  CAMAL_CHECK_GT(stride, 0);
  CAMAL_CHECK_GE(padding, 0);
  CAMAL_CHECK_LT(padding, kernel);
}

int64_t MaxPool1d::OutputLength(int64_t input_length) const {
  CAMAL_CHECK_GE(input_length + 2 * padding_, kernel_);
  return (input_length + 2 * padding_ - kernel_) / stride_ + 1;
}

Tensor MaxPool1d::Forward(const Tensor& x) {
  CAMAL_CHECK_EQ(x.ndim(), 3);
  input_shape_ = x.shape();
  const int64_t n = x.dim(0), c = x.dim(1), l = x.dim(2);
  const int64_t lo = OutputLength(l);
  Tensor y({n, c, lo});
  argmax_.assign(static_cast<size_t>(n * c * lo), 0);
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t ci = 0; ci < c; ++ci) {
      MaxPoolRow(x.data() + (ni * c + ci) * l,
                 y.data() + (ni * c + ci) * lo,
                 argmax_.data() + (ni * c + ci) * lo, l, lo, kernel_,
                 stride_, padding_);
    }
  }
  return y;
}

Tensor MaxPool1d::ForwardInference(const Tensor& x) {
  CAMAL_CHECK_EQ(x.ndim(), 3);
  const int64_t n = x.dim(0), c = x.dim(1), l = x.dim(2);
  const int64_t lo = OutputLength(l);
  Tensor y = Tensor::Uninitialized({n, c, lo});
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t ci = 0; ci < c; ++ci) {
      MaxPoolRow(x.data() + (ni * c + ci) * l,
                 y.data() + (ni * c + ci) * lo, nullptr, l, lo, kernel_,
                 stride_, padding_);
    }
  }
  return y;
}

Tensor MaxPool1d::Backward(const Tensor& grad_output) {
  const int64_t n = input_shape_[0], c = input_shape_[1], l = input_shape_[2];
  const int64_t lo = OutputLength(l);
  CAMAL_CHECK_EQ(grad_output.dim(2), lo);
  Tensor grad_input({n, c, l});
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t ci = 0; ci < c; ++ci) {
      const float* go = grad_output.data() + (ni * c + ci) * lo;
      float* gi = grad_input.data() + (ni * c + ci) * l;
      const int64_t* am = argmax_.data() + (ni * c + ci) * lo;
      for (int64_t t = 0; t < lo; ++t) gi[am[t]] += go[t];
    }
  }
  return grad_input;
}

AvgPool1d::AvgPool1d(int64_t kernel, int64_t stride)
    : kernel_(kernel), stride_(stride) {
  CAMAL_CHECK_GT(kernel, 0);
  CAMAL_CHECK_GT(stride, 0);
}

int64_t AvgPool1d::OutputLength(int64_t input_length) const {
  CAMAL_CHECK_GE(input_length, kernel_);
  return (input_length - kernel_) / stride_ + 1;
}

Tensor AvgPool1d::Forward(const Tensor& x) {
  CAMAL_CHECK_EQ(x.ndim(), 3);
  input_shape_ = x.shape();
  const int64_t n = x.dim(0), c = x.dim(1), l = x.dim(2);
  const int64_t lo = OutputLength(l);
  Tensor y({n, c, lo});
  const float inv_k = 1.0f / static_cast<float>(kernel_);
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t ci = 0; ci < c; ++ci) {
      AvgPoolRow(x.data() + (ni * c + ci) * l,
                 y.data() + (ni * c + ci) * lo, lo, kernel_, stride_, inv_k);
    }
  }
  return y;
}

Tensor AvgPool1d::ForwardInference(const Tensor& x) {
  CAMAL_CHECK_EQ(x.ndim(), 3);
  const int64_t n = x.dim(0), c = x.dim(1), l = x.dim(2);
  const int64_t lo = OutputLength(l);
  Tensor y = Tensor::Uninitialized({n, c, lo});
  const float inv_k = 1.0f / static_cast<float>(kernel_);
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t ci = 0; ci < c; ++ci) {
      AvgPoolRow(x.data() + (ni * c + ci) * l,
                 y.data() + (ni * c + ci) * lo, lo, kernel_, stride_, inv_k);
    }
  }
  return y;
}

Tensor AvgPool1d::Backward(const Tensor& grad_output) {
  const int64_t n = input_shape_[0], c = input_shape_[1], l = input_shape_[2];
  const int64_t lo = OutputLength(l);
  CAMAL_CHECK_EQ(grad_output.dim(2), lo);
  Tensor grad_input({n, c, l});
  const float inv_k = 1.0f / static_cast<float>(kernel_);
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t ci = 0; ci < c; ++ci) {
      const float* go = grad_output.data() + (ni * c + ci) * lo;
      float* gi = grad_input.data() + (ni * c + ci) * l;
      for (int64_t t = 0; t < lo; ++t) {
        const float g = go[t] * inv_k;
        const int64_t start = t * stride_;
        for (int64_t k = 0; k < kernel_; ++k) gi[start + k] += g;
      }
    }
  }
  return grad_input;
}

Tensor GlobalAvgPool1d::Forward(const Tensor& x) {
  CAMAL_CHECK_EQ(x.ndim(), 3);
  input_shape_ = x.shape();
  const int64_t n = x.dim(0), c = x.dim(1), l = x.dim(2);
  Tensor y({n, c});
  const float inv_l = 1.0f / static_cast<float>(l);
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t ci = 0; ci < c; ++ci) {
      const float* row = x.data() + (ni * c + ci) * l;
      float acc = 0.0f;
      for (int64_t t = 0; t < l; ++t) acc += row[t];
      y.at2(ni, ci) = acc * inv_l;
    }
  }
  return y;
}

Tensor GlobalAvgPool1d::Backward(const Tensor& grad_output) {
  const int64_t n = input_shape_[0], c = input_shape_[1], l = input_shape_[2];
  CAMAL_CHECK_EQ(grad_output.ndim(), 2);
  CAMAL_CHECK_EQ(grad_output.dim(0), n);
  CAMAL_CHECK_EQ(grad_output.dim(1), c);
  Tensor grad_input({n, c, l});
  const float inv_l = 1.0f / static_cast<float>(l);
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t ci = 0; ci < c; ++ci) {
      const float g = grad_output.at2(ni, ci) * inv_l;
      float* gi = grad_input.data() + (ni * c + ci) * l;
      for (int64_t t = 0; t < l; ++t) gi[t] = g;
    }
  }
  return grad_input;
}

}  // namespace camal::nn
