#ifndef CAMAL_NN_SEQUENTIAL_H_
#define CAMAL_NN_SEQUENTIAL_H_

#include <memory>
#include <vector>

#include "nn/module.h"

namespace camal::nn {

/// Chains modules: Forward applies them in order, Backward in reverse.
class Sequential : public Module {
 public:
  Sequential() = default;

  /// Appends a layer; returns a raw observer pointer for later inspection
  /// (e.g. reading CAM weights out of a specific layer).
  template <typename M>
  M* Add(std::unique_ptr<M> module) {
    M* raw = module.get();
    layers_.push_back(std::move(module));
    return raw;
  }

  Tensor Forward(const Tensor& x) override;
  Tensor Backward(const Tensor& grad_output) override;
  Tensor ForwardInference(const Tensor& x) override;
  void CollectParameters(std::vector<Parameter*>* out) override;
  void CollectBuffers(std::vector<Tensor*>* out) override;
  void SetTraining(bool training) override;

  size_t size() const { return layers_.size(); }
  Module* layer(size_t i) { return layers_[i].get(); }

 private:
  std::vector<std::unique_ptr<Module>> layers_;
};

/// Residual wrapper: out = body(x) + shortcut(x), with an optional
/// projection shortcut when channel counts differ (the ResUnit of Fig. 4).
/// When \p shortcut is null the identity shortcut is used.
class Residual : public Module {
 public:
  Residual(std::unique_ptr<Module> body, std::unique_ptr<Module> shortcut);

  Tensor Forward(const Tensor& x) override;
  Tensor Backward(const Tensor& grad_output) override;
  Tensor ForwardInference(const Tensor& x) override;

  /// ForwardInference with the trailing ReLU of the residual unit fused
  /// into the shortcut addition — one pass over the sum instead of two
  /// (used by Sequential::ForwardInference when a ReLU follows).
  Tensor ForwardInferenceRelu(const Tensor& x);

  void CollectParameters(std::vector<Parameter*>* out) override;
  void CollectBuffers(std::vector<Tensor*>* out) override;
  void SetTraining(bool training) override;

 private:
  /// Shared body of ForwardInference / ForwardInferenceRelu.
  Tensor RunInference(const Tensor& x, bool relu);

  std::unique_ptr<Module> body_;
  std::unique_ptr<Module> shortcut_;  // nullptr => identity
};

}  // namespace camal::nn

#endif  // CAMAL_NN_SEQUENTIAL_H_
