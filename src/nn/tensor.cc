#include "nn/tensor.h"

#include <algorithm>
#include <numeric>

#include "nn/gemm.h"

namespace camal::nn {
namespace {

int64_t ShapeNumel(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    CAMAL_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

}  // namespace

Tensor::Tensor(std::vector<int64_t> shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<size_t>(ShapeNumel(shape_)), 0.0f);
}

Tensor::Tensor(std::vector<int64_t> shape, UninitTag)
    : shape_(std::move(shape)) {
  data_.resize(static_cast<size_t>(ShapeNumel(shape_)));
}

Tensor Tensor::Zeros(std::vector<int64_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::Uninitialized(std::vector<int64_t> shape) {
  return Tensor(std::move(shape), UninitTag{});
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::FromVector(const std::vector<float>& values) {
  Tensor t({static_cast<int64_t>(values.size())});
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

Tensor Tensor::Reshape(std::vector<int64_t> new_shape) const {
  CAMAL_CHECK_EQ(ShapeNumel(new_shape), numel());
  Tensor t = *this;
  t.shape_ = std::move(new_shape);
  return t;
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

std::string Tensor::ShapeString() const {
  std::string out = "(";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(shape_[i]);
  }
  return out + ")";
}

void Tensor::AddInPlace(const Tensor& other) {
  CAMAL_CHECK_MSG(SameShape(other), "AddInPlace shape mismatch");
  const float* src = other.data();
  for (int64_t i = 0; i < numel(); ++i) data_[i] += src[i];
}

void Tensor::ScaleInPlace(float s) {
  for (float& v : data_) v *= s;
}

double Tensor::Sum() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0);
}

float Tensor::Max() const {
  CAMAL_CHECK_GT(numel(), 0);
  return *std::max_element(data_.begin(), data_.end());
}

double Tensor::Mean() const {
  CAMAL_CHECK_GT(numel(), 0);
  return Sum() / static_cast<double>(numel());
}

Tensor Add(const Tensor& a, const Tensor& b) {
  CAMAL_CHECK_MSG(a.SameShape(b), "Add shape mismatch");
  Tensor out = a;
  out.AddInPlace(b);
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CAMAL_CHECK_MSG(a.SameShape(b), "Sub shape mismatch");
  Tensor out = a;
  float* d = out.data();
  const float* s = b.data();
  for (int64_t i = 0; i < out.numel(); ++i) d[i] -= s[i];
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CAMAL_CHECK_MSG(a.SameShape(b), "Mul shape mismatch");
  Tensor out = a;
  float* d = out.data();
  const float* s = b.data();
  for (int64_t i = 0; i < out.numel(); ++i) d[i] *= s[i];
  return out;
}

Tensor Scale(const Tensor& a, float s) {
  Tensor out = a;
  out.ScaleInPlace(s);
  return out;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  CAMAL_CHECK_EQ(a.ndim(), 2);
  CAMAL_CHECK_EQ(b.ndim(), 2);
  CAMAL_CHECK_EQ(a.dim(1), b.dim(0));
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor out = Tensor::Uninitialized({m, n});
  GemmEpilogue(a.data(), b.data(), out.data(), m, k, n,
               /*row_scale=*/nullptr, /*row_shift=*/nullptr, /*relu=*/false);
  return out;
}

Tensor MatMulTransposeB(const Tensor& a, const Tensor& b) {
  CAMAL_CHECK_EQ(a.ndim(), 2);
  CAMAL_CHECK_EQ(b.ndim(), 2);
  CAMAL_CHECK_EQ(a.dim(1), b.dim(1));
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor out = Tensor::Uninitialized({m, n});
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a.data() + i * k;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b.data() + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      out.at2(i, j) = acc;
    }
  }
  return out;
}

Tensor MatMulTransposeA(const Tensor& a, const Tensor& b) {
  CAMAL_CHECK_EQ(a.ndim(), 2);
  CAMAL_CHECK_EQ(b.ndim(), 2);
  CAMAL_CHECK_EQ(a.dim(0), b.dim(0));
  const int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  for (int64_t p = 0; p < k; ++p) {
    const float* arow = a.data() + p * m;
    const float* brow = b.data() + p * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* orow = out.data() + i * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Tensor ConcatChannels(const std::vector<Tensor>& parts) {
  CAMAL_CHECK(!parts.empty());
  const int64_t n = parts[0].dim(0), l = parts[0].dim(2);
  int64_t total_c = 0;
  for (const auto& p : parts) {
    CAMAL_CHECK_EQ(p.ndim(), 3);
    CAMAL_CHECK_EQ(p.dim(0), n);
    CAMAL_CHECK_EQ(p.dim(2), l);
    total_c += p.dim(1);
  }
  Tensor out({n, total_c, l});
  for (int64_t ni = 0; ni < n; ++ni) {
    int64_t c_off = 0;
    for (const auto& p : parts) {
      const int64_t c = p.dim(1);
      for (int64_t ci = 0; ci < c; ++ci) {
        const float* src = p.data() + (ni * c + ci) * l;
        float* dst = out.data() + (ni * total_c + c_off + ci) * l;
        std::copy(src, src + l, dst);
      }
      c_off += c;
    }
  }
  return out;
}

std::vector<Tensor> SplitChannels(const Tensor& x,
                                  const std::vector<int64_t>& channel_counts) {
  CAMAL_CHECK_EQ(x.ndim(), 3);
  int64_t total_c = 0;
  for (int64_t c : channel_counts) total_c += c;
  CAMAL_CHECK_EQ(total_c, x.dim(1));
  const int64_t n = x.dim(0), l = x.dim(2);
  std::vector<Tensor> parts;
  parts.reserve(channel_counts.size());
  int64_t c_off = 0;
  for (int64_t c : channel_counts) {
    Tensor part({n, c, l});
    for (int64_t ni = 0; ni < n; ++ni) {
      for (int64_t ci = 0; ci < c; ++ci) {
        const float* src = x.data() + (ni * total_c + c_off + ci) * l;
        float* dst = part.data() + (ni * c + ci) * l;
        std::copy(src, src + l, dst);
      }
    }
    c_off += c;
    parts.push_back(std::move(part));
  }
  return parts;
}

}  // namespace camal::nn
