#ifndef CAMAL_NN_LINEAR_H_
#define CAMAL_NN_LINEAR_H_

#include "common/rng.h"
#include "nn/module.h"

namespace camal::nn {

/// Fully connected layer over (N, F_in) -> (N, F_out): y = x W^T + b.
///
/// Weight shape is (F_out, F_in) so CAM extraction can read per-class filter
/// weights directly as rows (Definition II.1 in the paper).
class Linear : public Module {
 public:
  /// Creates the layer; weights are Kaiming-uniform initialized from \p rng.
  Linear(int64_t in_features, int64_t out_features, bool bias, Rng* rng);

  Tensor Forward(const Tensor& x) override;
  Tensor Backward(const Tensor& grad_output) override;

  /// Forward without caching the input for Backward.
  Tensor ForwardInference(const Tensor& x) override;

  void CollectParameters(std::vector<Parameter*>* out) override;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  Parameter& weight() { return weight_; }
  Parameter& bias_param() { return bias_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  bool has_bias_;
  Parameter weight_;  // (F_out, F_in)
  Parameter bias_;    // (F_out)
  Tensor input_;
};

}  // namespace camal::nn

#endif  // CAMAL_NN_LINEAR_H_
