#include "loadgen/open_loop.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <thread>
#include <utility>

#include "common/rng.h"
#include "serve/service.h"

namespace camal::loadgen {

std::vector<double> IntendedArrivalOffsets(const OpenLoopOptions& options) {
  CAMAL_CHECK_GT(options.offered_rps, 0.0);
  CAMAL_CHECK_GT(options.requests, 0);
  std::vector<double> offsets;
  offsets.reserve(static_cast<size_t>(options.requests));
  if (options.process == ArrivalProcess::kFixedRate) {
    for (int64_t i = 0; i < options.requests; ++i) {
      offsets.push_back(static_cast<double>(i) / options.offered_rps);
    }
    return offsets;
  }
  Rng rng(options.seed);
  double t = 0.0;
  for (int64_t i = 0; i < options.requests; ++i) {
    // The first arrival also waits an exponential gap, so the start of
    // the run is as memoryless as the middle.
    t += rng.Exponential(options.offered_rps);
    offsets.push_back(t);
  }
  return offsets;
}

OpenLoopDriver::OpenLoopDriver(serve::Service* service,
                               std::vector<data::SeriesView> cohort,
                               OpenLoopOptions options)
    : service_(service),
      cohort_(std::move(cohort)),
      options_(std::move(options)) {
  CAMAL_CHECK(service_ != nullptr);
  CAMAL_CHECK(!cohort_.empty());
}

OpenLoopResult OpenLoopDriver::Run() {
  const std::vector<double> intended = IntendedArrivalOffsets(options_);
  OpenLoopResult out;
  out.offered_rps = options_.offered_rps;
  out.intended = static_cast<int64_t>(intended.size());

  std::vector<std::future<Result<serve::ScanResult>>> futures;
  std::vector<double> submit_offsets;  // seconds from t0, per request
  futures.reserve(intended.size());
  submit_offsets.reserve(intended.size());

  const auto t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < intended.size(); ++i) {
    const auto target =
        t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(intended[i]));
    // Open loop: wait for the intended time, never for a completion. A
    // service drowning in backlog does not slow this loop down.
    std::this_thread::sleep_until(target);
    serve::ScanRequest request;
    request.household_id = "loadgen-" + std::to_string(i);
    request.appliance = options_.appliance;
    request.series = cohort_[i % cohort_.size()];
    request.priority = options_.priority;
    request.deadline_seconds = options_.deadline_seconds;
    const double submit_offset =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    submit_offsets.push_back(submit_offset);
    out.max_submit_lag_seconds =
        std::max(out.max_submit_lag_seconds, submit_offset - intended[i]);
    futures.push_back(service_->Submit(std::move(request)));
    ++out.submitted;
  }

  // Harvest. Latency is charged from the INTENDED arrival: queueing delay
  // the request experienced plus the schedule slip the driver added, with
  // the in-service part taken from the service's own admission-to-
  // completion measurement — no completion-time clock read racing the
  // workers.
  double last_completion_offset = 0.0;
  for (size_t i = 0; i < futures.size(); ++i) {
    Result<serve::ScanResult> result = futures[i].get();
    if (result.ok()) {
      ++out.completed;
      const double service_latency = result.value().latency_seconds;
      out.latency.Record(
          std::max(0.0, submit_offsets[i] - intended[i] + service_latency));
      last_completion_offset = std::max(
          last_completion_offset, submit_offsets[i] + service_latency);
    } else if (result.status().code() == StatusCode::kDeadlineExceeded) {
      ++out.shed_deadline;
    } else if (result.status().code() == StatusCode::kFailedPrecondition) {
      ++out.rejected_backpressure;
    } else {
      ++out.failed;
    }
  }
  out.wall_seconds = last_completion_offset > 0.0
                         ? last_completion_offset
                         : (intended.empty() ? 0.0 : intended.back());
  out.achieved_rps = out.wall_seconds > 0.0
                         ? static_cast<double>(out.completed) /
                               out.wall_seconds
                         : 0.0;
  return out;
}

}  // namespace camal::loadgen
