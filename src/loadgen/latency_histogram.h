#ifndef CAMAL_LOADGEN_LATENCY_HISTOGRAM_H_
#define CAMAL_LOADGEN_LATENCY_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>

namespace camal::loadgen {

/// Compact latency distribution summary, in milliseconds (the unit every
/// bench table prints).
struct LatencySummary {
  int64_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// Fixed-size log-bucketed latency histogram, the shared percentile
/// machinery of the load harness and the benches (replacing the
/// sort-a-vector-of-doubles helpers each bench used to copy-paste).
///
/// 48 buckets per decade over [1us, 1000s) — ~4.9% relative width, so a
/// reported percentile is within ~2.5% of the true sample value, constant
/// memory however many samples arrive, and Record is a single atomic
/// increment: open-loop drivers record from harvesting threads while the
/// driver still submits, with no lock and no per-sample allocation.
/// Samples below/above the range clamp into the edge buckets; max is
/// tracked exactly.
///
/// Record/Merge are thread-safe. Readers (Percentile, Summary) see a
/// consistent-enough snapshot for reporting: counts are monotone and each
/// sample appears exactly once. Copying snapshots the counters.
class LatencyHistogram {
 public:
  static constexpr double kMinSeconds = 1e-6;
  static constexpr int kBucketsPerDecade = 48;
  static constexpr int kDecades = 9;
  static constexpr int kNumBuckets = kBucketsPerDecade * kDecades;

  LatencyHistogram();
  LatencyHistogram(const LatencyHistogram& other);
  LatencyHistogram& operator=(const LatencyHistogram& other);

  /// Adds one sample (seconds). Negative / non-finite values clamp to the
  /// lowest bucket — an open-loop latency can round below zero when clock
  /// reads straddle the scheduler tick, and must not crash the harness.
  void Record(double seconds);

  /// Adds every sample of \p other into this histogram.
  void Merge(const LatencyHistogram& other);

  void Reset();

  int64_t count() const;
  double total_seconds() const;
  /// Largest recorded sample, exact (not bucket-rounded). 0 when empty.
  double max_seconds() const;

  /// The \p p quantile (p in [0, 1]) in seconds: the geometric midpoint
  /// of the bucket holding the ceil(p * count)-th smallest sample, capped
  /// at the exact max. 0 when empty.
  double Percentile(double p) const;

  LatencySummary Summary() const;

  /// Bucket index a sample of \p seconds lands in (clamped to range).
  static int BucketIndex(double seconds);
  /// Inclusive lower bound of bucket \p index, in seconds.
  static double BucketLowerSeconds(int index);

 private:
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> total_ns_{0};
  std::atomic<int64_t> max_ns_{0};
};

}  // namespace camal::loadgen

#endif  // CAMAL_LOADGEN_LATENCY_HISTOGRAM_H_
