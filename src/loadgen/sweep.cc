#include "loadgen/sweep.h"

#include <algorithm>
#include <cmath>

#include "serve/service.h"

namespace camal::loadgen {

LoadSweepResult RunLoadSweep(serve::Service* service,
                             const std::vector<data::SeriesView>& cohort,
                             const LoadSweepOptions& options) {
  CAMAL_CHECK(service != nullptr);
  CAMAL_CHECK(!options.offered_rps.empty());
  CAMAL_CHECK_GT(options.seconds_per_point, 0.0);
  LoadSweepResult result;
  result.points.reserve(options.offered_rps.size());

  for (size_t i = 0; i < options.offered_rps.size(); ++i) {
    OpenLoopOptions run = options.base;
    run.offered_rps = options.offered_rps[i];
    run.requests = std::clamp(
        static_cast<int64_t>(
            std::llround(run.offered_rps * options.seconds_per_point)),
        options.min_requests_per_point, options.max_requests_per_point);
    run.seed = options.base.seed + i;  // independent schedules per point
    OpenLoopDriver driver(service, cohort, run);
    const OpenLoopResult outcome = driver.Run();

    LoadSweepPoint point;
    point.offered_rps = outcome.offered_rps;
    point.achieved_rps = outcome.achieved_rps;
    point.utilization = outcome.offered_rps > 0.0
                            ? outcome.achieved_rps / outcome.offered_rps
                            : 0.0;
    point.requests = outcome.intended;
    point.completed = outcome.completed;
    point.shed_deadline = outcome.shed_deadline;
    point.rejected_backpressure = outcome.rejected_backpressure;
    point.failed = outcome.failed;
    point.max_submit_lag_seconds = outcome.max_submit_lag_seconds;
    point.latency = outcome.latency.Summary();
    result.points.push_back(point);
  }

  // Knee: the highest offered load still served at ~full rate. The ladder
  // is ascending, so take the LAST qualifying point — below it the
  // service keeps up, above it achieved flattens and latency explodes.
  for (size_t i = 0; i < result.points.size(); ++i) {
    if (result.points[i].utilization >= options.knee_utilization) {
      result.knee_index = static_cast<int>(i);
    }
  }
  if (result.knee_index >= 0) {
    result.knee_basis = "utilization";
  } else {
    // Whole ladder overloaded: report where achieved throughput peaked —
    // a capacity estimate rather than a served-load boundary, but still a
    // knee the sweep's caller (and the CI gate) can anchor on.
    double best = -1.0;
    for (size_t i = 0; i < result.points.size(); ++i) {
      if (result.points[i].achieved_rps > best) {
        best = result.points[i].achieved_rps;
        result.knee_index = static_cast<int>(i);
      }
    }
    result.knee_basis = "peak_achieved";
  }
  result.knee_rps =
      result.points[static_cast<size_t>(result.knee_index)].offered_rps;
  return result;
}

}  // namespace camal::loadgen
