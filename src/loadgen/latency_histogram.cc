#include "loadgen/latency_histogram.h"

#include <algorithm>
#include <cmath>

namespace camal::loadgen {

LatencyHistogram::LatencyHistogram() { Reset(); }

LatencyHistogram::LatencyHistogram(const LatencyHistogram& other) {
  *this = other;
}

LatencyHistogram& LatencyHistogram::operator=(const LatencyHistogram& other) {
  if (this == &other) return *this;
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[static_cast<size_t>(i)].store(
        other.buckets_[static_cast<size_t>(i)].load(
            std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
  count_.store(other.count_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  total_ns_.store(other.total_ns_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  max_ns_.store(other.max_ns_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  return *this;
}

int LatencyHistogram::BucketIndex(double seconds) {
  if (!(seconds > kMinSeconds)) return 0;  // also catches NaN
  const int index = static_cast<int>(
      std::log10(seconds / kMinSeconds) * kBucketsPerDecade);
  return std::clamp(index, 0, kNumBuckets - 1);
}

double LatencyHistogram::BucketLowerSeconds(int index) {
  return kMinSeconds *
         std::pow(10.0, static_cast<double>(index) /
                            static_cast<double>(kBucketsPerDecade));
}

void LatencyHistogram::Record(double seconds) {
  if (!std::isfinite(seconds) || seconds < 0.0) seconds = 0.0;
  buckets_[static_cast<size_t>(BucketIndex(seconds))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const auto ns = static_cast<int64_t>(seconds * 1e9);
  total_ns_.fetch_add(ns, std::memory_order_relaxed);
  int64_t seen = max_ns_.load(std::memory_order_relaxed);
  while (ns > seen &&
         !max_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    const int64_t n = other.buckets_[static_cast<size_t>(i)].load(
        std::memory_order_relaxed);
    if (n != 0) {
      buckets_[static_cast<size_t>(i)].fetch_add(n,
                                                 std::memory_order_relaxed);
    }
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  total_ns_.fetch_add(other.total_ns_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  const int64_t other_max = other.max_ns_.load(std::memory_order_relaxed);
  int64_t seen = max_ns_.load(std::memory_order_relaxed);
  while (other_max > seen &&
         !max_ns_.compare_exchange_weak(seen, other_max,
                                        std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  total_ns_.store(0, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

int64_t LatencyHistogram::count() const {
  return count_.load(std::memory_order_relaxed);
}

double LatencyHistogram::total_seconds() const {
  return static_cast<double>(total_ns_.load(std::memory_order_relaxed)) *
         1e-9;
}

double LatencyHistogram::max_seconds() const {
  return static_cast<double>(max_ns_.load(std::memory_order_relaxed)) * 1e-9;
}

double LatencyHistogram::Percentile(double p) const {
  const int64_t n = count();
  if (n <= 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const auto rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(p * static_cast<double>(n))));
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // Geometric midpoint of the bucket — the unbiased point estimate
      // for a log-spaced bin — never reported beyond the exact max.
      const double lower = BucketLowerSeconds(i);
      const double upper = BucketLowerSeconds(i + 1);
      return std::min(std::sqrt(lower * upper), max_seconds());
    }
  }
  return max_seconds();
}

LatencySummary LatencyHistogram::Summary() const {
  LatencySummary summary;
  summary.count = count();
  if (summary.count == 0) return summary;
  summary.mean_ms =
      total_seconds() / static_cast<double>(summary.count) * 1e3;
  summary.p50_ms = Percentile(0.50) * 1e3;
  summary.p95_ms = Percentile(0.95) * 1e3;
  summary.p99_ms = Percentile(0.99) * 1e3;
  summary.max_ms = max_seconds() * 1e3;
  return summary;
}

}  // namespace camal::loadgen
