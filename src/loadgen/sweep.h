#ifndef CAMAL_LOADGEN_SWEEP_H_
#define CAMAL_LOADGEN_SWEEP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "loadgen/open_loop.h"

namespace camal::loadgen {

/// Configuration of an offered-load sweep.
struct LoadSweepOptions {
  /// Offered-load ladder (requests/second), ascending.
  std::vector<double> offered_rps;
  /// Intended submission duration per ladder point; the request count is
  /// offered_rps * seconds_per_point, clamped to the bounds below.
  double seconds_per_point = 1.0;
  int64_t min_requests_per_point = 16;
  int64_t max_requests_per_point = 4000;
  /// A point with achieved/offered >= this is "keeping up"; the knee is
  /// the highest such point. 0.9 leaves room for scheduler jitter without
  /// mistaking a collapsing point for a healthy one.
  double knee_utilization = 0.9;
  /// Template for every point's run (appliance, process, priority,
  /// deadline, seed). offered_rps/requests are overwritten per point;
  /// the seed is offset per point so ladder points draw independent
  /// arrival schedules while the sweep stays deterministic.
  OpenLoopOptions base;
};

/// One ladder point's outcome.
struct LoadSweepPoint {
  double offered_rps = 0.0;
  double achieved_rps = 0.0;
  double utilization = 0.0;  ///< achieved_rps / offered_rps.
  int64_t requests = 0;
  int64_t completed = 0;
  int64_t shed_deadline = 0;
  int64_t rejected_backpressure = 0;
  int64_t failed = 0;
  double max_submit_lag_seconds = 0.0;
  LatencySummary latency;
};

/// The sweep's verdict: per-point latency vs load, plus the throughput
/// knee estimate.
struct LoadSweepResult {
  std::vector<LoadSweepPoint> points;  ///< one per ladder entry, in order.
  int knee_index = -1;
  /// Offered load at the knee: the highest ladder point the service still
  /// kept up with (utilization >= knee_utilization). When no point
  /// qualified (the whole ladder overloads the service), falls back to
  /// the point with the highest ACHIEVED rate — the capacity estimate —
  /// and knee_basis says which rule fired.
  double knee_rps = 0.0;
  std::string knee_basis;  ///< "utilization" or "peak_achieved".
};

/// Walks the ladder low to high against \p service, one open-loop run per
/// point (same cohort, per-point seeds), and locates the knee. The
/// service is shared across points and must stay started throughout;
/// counters accumulate in the service, but every number here comes from
/// the drivers' own futures, so sweeping a warm service is fine.
LoadSweepResult RunLoadSweep(serve::Service* service,
                             const std::vector<data::SeriesView>& cohort,
                             const LoadSweepOptions& options);

}  // namespace camal::loadgen

#endif  // CAMAL_LOADGEN_SWEEP_H_
