#ifndef CAMAL_LOADGEN_OPEN_LOOP_H_
#define CAMAL_LOADGEN_OPEN_LOOP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/series_view.h"
#include "loadgen/latency_histogram.h"
#include "serve/request_queue.h"

namespace camal::serve {
class Service;
}  // namespace camal::serve

namespace camal::loadgen {

/// How intended arrival times are spaced.
enum class ArrivalProcess {
  /// Exponential inter-arrival gaps (a memoryless request stream — the
  /// fleet-of-independent-households model; bursts happen naturally).
  kPoisson,
  /// Exactly 1/rate between arrivals (isolates queueing from burstiness).
  kFixedRate,
};

/// Configuration of one open-loop run against a serve::Service.
struct OpenLoopOptions {
  /// Offered load: intended arrivals per second. Must be > 0.
  double offered_rps = 100.0;
  /// Total requests in the run. Must be > 0.
  int64_t requests = 100;
  ArrivalProcess process = ArrivalProcess::kPoisson;
  /// Seed of the arrival schedule and the household rotation — two runs
  /// with equal options submit the identical request sequence at the
  /// identical intended times.
  uint64_t seed = 1;
  /// Registered appliance every request targets.
  std::string appliance = "appliance";
  serve::RequestPriority priority = serve::RequestPriority::kNormal;
  /// Per-request deadline passed through to ScanRequest; <= 0 = none.
  double deadline_seconds = 0.0;
};

/// The intended arrival offsets (seconds from run start, nondecreasing,
/// one per request) that \p options generates. Deterministic in the seed;
/// exposed so tests pin the schedule and the driver provably replays it.
std::vector<double> IntendedArrivalOffsets(const OpenLoopOptions& options);

/// Outcome of one open-loop run.
struct OpenLoopResult {
  double offered_rps = 0.0;
  /// Completions per second of wall time, submission start to last
  /// completion. Tracks offered_rps below saturation; flattens at the
  /// service's capacity above it — the throughput side of the knee.
  double achieved_rps = 0.0;
  int64_t intended = 0;   ///< scheduled arrivals (== options.requests).
  int64_t submitted = 0;  ///< requests actually handed to Submit (all).
  int64_t completed = 0;
  int64_t rejected_backpressure = 0;  ///< bounced off the bounded queue.
  int64_t shed_deadline = 0;          ///< kDeadlineExceeded futures.
  int64_t failed = 0;                 ///< any other non-OK future.
  /// Submission start to last completion, in seconds.
  double wall_seconds = 0.0;
  /// Worst (submit time - intended time) across the run: how far the
  /// DRIVER fell behind its own schedule. Should stay near zero; a large
  /// value means the harness itself throttled the offered load and the
  /// run underestimates it (the closed-loop mistake this subsystem
  /// exists to avoid).
  double max_submit_lag_seconds = 0.0;
  /// Intended-arrival -> completion latency of completed requests. The
  /// open-loop number: a request that waited behind a backlog is charged
  /// the wait from when it WANTED to arrive, so the percentiles include
  /// the queueing a closed-loop harness never sees (no coordinated
  /// omission).
  LatencyHistogram latency;
};

/// Deterministic open-loop load driver: schedules every intended arrival
/// up front (IntendedArrivalOffsets), then walks the schedule, sleeping
/// until each intended time and submitting WITHOUT waiting for any
/// completion — a backlogged service makes latencies grow, never the
/// arrival rate shrink. Requests rotate through the cohort round-robin
/// and borrow their series views (the cohort must outlive Run).
///
/// Run submits on the calling thread and harvests every future before
/// returning, so one driver measures one stream; concurrent streams (e.g.
/// a high-priority trickle against a low-priority flood) are separate
/// drivers on separate threads against the same service.
class OpenLoopDriver {
 public:
  /// \p service must be started and outlive the driver; \p cohort views
  /// must stay valid through Run.
  OpenLoopDriver(serve::Service* service, std::vector<data::SeriesView> cohort,
                 OpenLoopOptions options);

  /// Executes the run. Call at most once per driver.
  OpenLoopResult Run();

 private:
  serve::Service* service_;
  std::vector<data::SeriesView> cohort_;
  OpenLoopOptions options_;
};

}  // namespace camal::loadgen

#endif  // CAMAL_LOADGEN_OPEN_LOOP_H_
