#ifndef CAMAL_METRICS_ENERGY_H_
#define CAMAL_METRICS_ENERGY_H_

#include <vector>

namespace camal::metrics {

/// Mean absolute error between predicted and true appliance power (Watts).
double MeanAbsoluteError(const std::vector<float>& predicted,
                         const std::vector<float>& truth);

/// Root mean square error between predicted and true appliance power.
double RootMeanSquareError(const std::vector<float>& predicted,
                           const std::vector<float>& truth);

/// Matching Ratio (§V-D, the energy-disaggregation overlap indicator):
///   MR = sum_t min(yhat_t, y_t) / sum_t max(yhat_t, y_t).
/// Returns 0 when the denominator is 0 (both series all-zero).
double MatchingRatio(const std::vector<float>& predicted,
                     const std::vector<float>& truth);

}  // namespace camal::metrics

#endif  // CAMAL_METRICS_ENERGY_H_
