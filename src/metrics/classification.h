#ifndef CAMAL_METRICS_CLASSIFICATION_H_
#define CAMAL_METRICS_CLASSIFICATION_H_

#include <cstdint>
#include <vector>

namespace camal::metrics {

/// Binary confusion counts.
struct BinaryCounts {
  int64_t tp = 0;
  int64_t fp = 0;
  int64_t tn = 0;
  int64_t fn = 0;

  int64_t total() const { return tp + fp + tn + fn; }

  /// Merges another set of counts into this one.
  void Merge(const BinaryCounts& other);
};

/// Tallies predictions against ground truth; both are 0/1 sequences of the
/// same length (values >= 0.5 count as positive).
BinaryCounts CountBinary(const std::vector<float>& predicted,
                         const std::vector<float>& truth);

/// Precision tp/(tp+fp); 0 when undefined.
double Precision(const BinaryCounts& counts);

/// Recall tp/(tp+fn); 0 when undefined.
double Recall(const BinaryCounts& counts);

/// F1 = harmonic mean of precision and recall; 0 when undefined.
double F1Score(const BinaryCounts& counts);

/// Balanced accuracy = (TPR + TNR) / 2 (§V-D); a side with no examples
/// contributes 0.
double BalancedAccuracy(const BinaryCounts& counts);

}  // namespace camal::metrics

#endif  // CAMAL_METRICS_CLASSIFICATION_H_
