#include "metrics/energy.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace camal::metrics {

double MeanAbsoluteError(const std::vector<float>& predicted,
                         const std::vector<float>& truth) {
  CAMAL_CHECK_EQ(predicted.size(), truth.size());
  CAMAL_CHECK(!predicted.empty());
  double total = 0.0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    total += std::fabs(static_cast<double>(predicted[i]) - truth[i]);
  }
  return total / static_cast<double>(predicted.size());
}

double RootMeanSquareError(const std::vector<float>& predicted,
                           const std::vector<float>& truth) {
  CAMAL_CHECK_EQ(predicted.size(), truth.size());
  CAMAL_CHECK(!predicted.empty());
  double total = 0.0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    const double d = static_cast<double>(predicted[i]) - truth[i];
    total += d * d;
  }
  return std::sqrt(total / static_cast<double>(predicted.size()));
}

double MatchingRatio(const std::vector<float>& predicted,
                     const std::vector<float>& truth) {
  CAMAL_CHECK_EQ(predicted.size(), truth.size());
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    num += std::min(predicted[i], truth[i]);
    den += std::max(predicted[i], truth[i]);
  }
  return den > 0.0 ? num / den : 0.0;
}

}  // namespace camal::metrics
