#include "metrics/classification.h"

#include "common/check.h"

namespace camal::metrics {

void BinaryCounts::Merge(const BinaryCounts& other) {
  tp += other.tp;
  fp += other.fp;
  tn += other.tn;
  fn += other.fn;
}

BinaryCounts CountBinary(const std::vector<float>& predicted,
                         const std::vector<float>& truth) {
  CAMAL_CHECK_EQ(predicted.size(), truth.size());
  BinaryCounts c;
  for (size_t i = 0; i < predicted.size(); ++i) {
    const bool p = predicted[i] >= 0.5f;
    const bool t = truth[i] >= 0.5f;
    if (p && t) {
      ++c.tp;
    } else if (p && !t) {
      ++c.fp;
    } else if (!p && t) {
      ++c.fn;
    } else {
      ++c.tn;
    }
  }
  return c;
}

double Precision(const BinaryCounts& c) {
  const int64_t denom = c.tp + c.fp;
  return denom > 0 ? static_cast<double>(c.tp) / denom : 0.0;
}

double Recall(const BinaryCounts& c) {
  const int64_t denom = c.tp + c.fn;
  return denom > 0 ? static_cast<double>(c.tp) / denom : 0.0;
}

double F1Score(const BinaryCounts& c) {
  const double p = Precision(c);
  const double r = Recall(c);
  return (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

double BalancedAccuracy(const BinaryCounts& c) {
  const int64_t pos = c.tp + c.fn;
  const int64_t neg = c.tn + c.fp;
  const double tpr = pos > 0 ? static_cast<double>(c.tp) / pos : 0.0;
  const double tnr = neg > 0 ? static_cast<double>(c.tn) / neg : 0.0;
  return 0.5 * (tpr + tnr);
}

}  // namespace camal::metrics
