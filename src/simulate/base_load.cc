#include "simulate/base_load.h"

#include <algorithm>
#include <cmath>

namespace camal::simulate {

std::vector<float> GenerateBaseLoad(int64_t num_samples,
                                    double interval_seconds,
                                    const BaseLoadConfig& config, Rng* rng) {
  std::vector<float> out(static_cast<size_t>(num_samples), 0.0f);
  const double samples_per_day = 86400.0 / interval_seconds;
  const double fridge_period =
      config.fridge_period_minutes * 60.0 / interval_seconds;
  const double fridge_phase = rng->Uniform(0.0, fridge_period);

  for (int64_t i = 0; i < num_samples; ++i) {
    double w = config.standby_w;
    // Fridge compressor square wave.
    const double cycle_pos =
        std::fmod(static_cast<double>(i) + fridge_phase, fridge_period) /
        fridge_period;
    if (cycle_pos < config.fridge_duty) w += config.fridge_w;
    // Diurnal lighting: peaks around 20:00, near zero mid-day/night.
    const double hour =
        std::fmod(static_cast<double>(i) / samples_per_day * 24.0, 24.0);
    double dist = std::fabs(hour - 20.0);
    dist = std::min(dist, 24.0 - dist);
    w += config.lighting_peak_w * std::exp(-0.5 * (dist / 2.5) * (dist / 2.5));
    // Measurement noise.
    w += rng->Gaussian(0.0, config.noise_std_w);
    out[static_cast<size_t>(i)] = static_cast<float>(std::max(0.0, w));
  }

  // Distractor pulses (unmodelled appliances).
  const double days = static_cast<double>(num_samples) / samples_per_day;
  const int64_t n_pulses = rng->Poisson(config.distractor_rate_per_day * days);
  for (int64_t p = 0; p < n_pulses; ++p) {
    const int64_t start = rng->UniformInt(0, num_samples - 1);
    const double minutes = rng->Uniform(config.distractor_min_minutes,
                                        config.distractor_max_minutes);
    const auto len = static_cast<int64_t>(
        std::max(1.0, std::round(minutes * 60.0 / interval_seconds)));
    const double watts =
        rng->Uniform(config.distractor_min_w, config.distractor_max_w);
    for (int64_t i = start; i < std::min(num_samples, start + len); ++i) {
      out[static_cast<size_t>(i)] += static_cast<float>(watts);
    }
  }
  return out;
}

}  // namespace camal::simulate
