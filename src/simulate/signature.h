#ifndef CAMAL_SIMULATE_SIGNATURE_H_
#define CAMAL_SIMULATE_SIGNATURE_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace camal::simulate {

/// Appliance categories evaluated in the paper (Table I).
enum class ApplianceType {
  kDishwasher,
  kKettle,
  kMicrowave,
  kWashingMachine,
  kShower,
  kElectricVehicle,
};

/// Canonical lower-case name ("dishwasher", "kettle", ...).
const char* ApplianceName(ApplianceType type);

/// Table I preprocessing parameters (ON threshold, average power) for the
/// appliance; these drive both the simulator and the evaluation pipeline.
data::ApplianceSpec SpecFor(ApplianceType type);

/// One synthetic appliance activation: a power-vs-time profile in Watts,
/// sampled at \p interval_seconds. Profiles follow the characteristic
/// shapes of each appliance class:
///  - kettle: short single rectangle near 2 kW;
///  - microwave: short pulse train near 1.1 kW (duty-cycled);
///  - dishwasher: long multi-phase cycle with two ~2 kW heating plateaus
///    separated by low-power wash/rinse phases;
///  - washing machine: heating plateau followed by oscillating drum load;
///  - shower: medium rectangle near 8 kW;
///  - electric vehicle: hours-long plateau near 4 kW with a charging taper.
std::vector<float> GenerateActivation(ApplianceType type,
                                      double interval_seconds, Rng* rng);

/// Typical number of activations per day used by the dataset profiles.
double DefaultActivationsPerDay(ApplianceType type);

/// Relative probability of an activation starting at a given hour of day
/// (diurnal usage prior; EV charging is mostly nocturnal, kettles peak at
/// breakfast, etc.). Values need not be normalized.
double UsageWeightAtHour(ApplianceType type, double hour);

}  // namespace camal::simulate

#endif  // CAMAL_SIMULATE_SIGNATURE_H_
