#ifndef CAMAL_SIMULATE_HOUSEHOLD_H_
#define CAMAL_SIMULATE_HOUSEHOLD_H_

#include <vector>

#include "common/rng.h"
#include "data/time_series.h"
#include "simulate/base_load.h"
#include "simulate/signature.h"

namespace camal::simulate {

/// One appliance installed in a simulated household.
struct InstalledAppliance {
  ApplianceType type = ApplianceType::kDishwasher;
  /// Mean activations per day (Poisson). Defaults to the per-type rate.
  double activations_per_day = -1.0;
  /// When true, the house records a submeter trace for this appliance
  /// (strong ground truth); when false only the possession bit is known.
  bool submetered = true;
};

/// Full household simulation config.
struct HouseholdConfig {
  int house_id = 0;
  double interval_seconds = 60.0;
  double days = 7.0;
  std::vector<InstalledAppliance> appliances;
  BaseLoadConfig base_load;
  /// Fraction of readings knocked out as missing (random gap starts with
  /// geometric lengths), exercising the ffill/drop pipeline.
  double missing_fraction = 0.0;
  double mean_gap_samples = 5.0;
};

/// Simulates one household: aggregate = base load + sum of appliance
/// activations + noise (Equation 1). Activation start times follow each
/// appliance's diurnal usage prior. Submetered appliances also produce
/// ground-truth traces aligned with the aggregate.
data::HouseRecord SimulateHousehold(const HouseholdConfig& config, Rng* rng);

}  // namespace camal::simulate

#endif  // CAMAL_SIMULATE_HOUSEHOLD_H_
