#ifndef CAMAL_SIMULATE_PROFILES_H_
#define CAMAL_SIMULATE_PROFILES_H_

#include <string>
#include <vector>

#include "simulate/household.h"

namespace camal::simulate {

/// A synthetic stand-in for one of the paper's five datasets (Table I).
/// House counts, sampling intervals, appliance mixes, and submetering
/// structure mirror the originals; `scale` lets benches shrink the cohort
/// and recording length proportionally for bounded runtimes.
struct DatasetProfile {
  std::string name;
  int num_submetered_houses = 0;   ///< houses with appliance ground truth
  int num_possession_only = 0;     ///< houses with ownership bit only
  double interval_seconds = 60.0;
  double days = 7.0;
  /// Appliances present in the profile with per-house ownership
  /// probability. The probability applies to the possession-only cohort
  /// (where non-owners provide the negative class); submetered houses
  /// always own and monitor the profile appliances, as in the real
  /// datasets.
  struct ProfileAppliance {
    ApplianceType type;
    double ownership_probability = 1.0;
  };
  std::vector<ProfileAppliance> appliances;
  double missing_fraction = 0.01;
};

/// UKDALE-like: 5 submetered houses, dishwasher/microwave/kettle.
DatasetProfile UkdaleProfile();
/// REFIT-like: 20 submetered houses, dishwasher/washer/microwave/kettle.
DatasetProfile RefitProfile();
/// IDEAL-like: 39 submetered + 216 possession-only houses,
/// dishwasher/washer/shower.
DatasetProfile IdealProfile();
/// EDF EV-like: 24 submetered houses, 30-min interval, EV only.
DatasetProfile EdfEvProfile();
/// EDF Weak-like: 558 possession-only houses, 30-min interval, EV only.
DatasetProfile EdfWeakProfile();

/// All four strongly evaluable profiles (UKDALE, REFIT, IDEAL, EDF EV).
std::vector<DatasetProfile> AllEvaluationProfiles();

/// Simulates a cohort for \p profile. \p scale in (0, 1] shrinks house
/// counts (floor, at least 2 submetered or possession houses where the
/// profile has any) and recording days. Houses that do not own the target
/// appliances still produce aggregate-only records (negative examples).
std::vector<data::HouseRecord> SimulateDataset(const DatasetProfile& profile,
                                               double scale, uint64_t seed);

}  // namespace camal::simulate

#endif  // CAMAL_SIMULATE_PROFILES_H_
