#include "simulate/household.h"

#include <algorithm>
#include <cmath>

namespace camal::simulate {
namespace {

// Samples an activation start index from the appliance's diurnal prior by
// rejection sampling over the whole recording.
int64_t SampleStartIndex(ApplianceType type, int64_t num_samples,
                         double interval_seconds, Rng* rng) {
  const double samples_per_day = 86400.0 / interval_seconds;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const int64_t idx = rng->UniformInt(0, num_samples - 1);
    const double hour =
        std::fmod(static_cast<double>(idx) / samples_per_day * 24.0, 24.0);
    const double w = UsageWeightAtHour(type, hour);
    if (rng->Uniform(0.0, 2.0) < w) return idx;
  }
  return rng->UniformInt(0, num_samples - 1);
}

}  // namespace

data::HouseRecord SimulateHousehold(const HouseholdConfig& config, Rng* rng) {
  const auto num_samples = static_cast<int64_t>(
      std::llround(config.days * 86400.0 / config.interval_seconds));
  CAMAL_CHECK_GT(num_samples, 0);

  data::HouseRecord house;
  house.house_id = config.house_id;
  house.interval_seconds = config.interval_seconds;
  std::vector<float> aggregate =
      GenerateBaseLoad(num_samples, config.interval_seconds, config.base_load,
                       rng);

  for (const auto& installed : config.appliances) {
    const double rate = installed.activations_per_day > 0.0
                            ? installed.activations_per_day
                            : DefaultActivationsPerDay(installed.type);
    std::vector<float> trace(static_cast<size_t>(num_samples), 0.0f);
    const int64_t n_activations =
        std::max<int64_t>(1, rng->Poisson(rate * config.days));
    for (int64_t a = 0; a < n_activations; ++a) {
      const std::vector<float> profile =
          GenerateActivation(installed.type, config.interval_seconds, rng);
      const int64_t start = SampleStartIndex(
          installed.type, num_samples, config.interval_seconds, rng);
      for (size_t i = 0; i < profile.size(); ++i) {
        const int64_t t = start + static_cast<int64_t>(i);
        if (t >= num_samples) break;
        trace[static_cast<size_t>(t)] += profile[i];
      }
    }
    for (int64_t t = 0; t < num_samples; ++t) {
      aggregate[static_cast<size_t>(t)] += trace[static_cast<size_t>(t)];
    }
    house.owned_appliances.push_back(ApplianceName(installed.type));
    if (installed.submetered) {
      data::ApplianceTrace at;
      at.name = ApplianceName(installed.type);
      at.power = std::move(trace);
      house.appliances.push_back(std::move(at));
    }
  }

  // Inject missing gaps.
  if (config.missing_fraction > 0.0) {
    int64_t missing_budget = static_cast<int64_t>(
        config.missing_fraction * static_cast<double>(num_samples));
    while (missing_budget > 0) {
      const int64_t start = rng->UniformInt(0, num_samples - 1);
      const int64_t len = std::max<int64_t>(
          1, static_cast<int64_t>(
                 rng->Exponential(1.0 / config.mean_gap_samples)));
      for (int64_t t = start;
           t < std::min(num_samples, start + len) && missing_budget > 0; ++t) {
        if (!data::IsMissing(aggregate[static_cast<size_t>(t)])) {
          aggregate[static_cast<size_t>(t)] = data::kMissingValue;
          --missing_budget;
        }
      }
    }
  }

  house.aggregate = std::move(aggregate);
  return house;
}

}  // namespace camal::simulate
