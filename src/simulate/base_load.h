#ifndef CAMAL_SIMULATE_BASE_LOAD_H_
#define CAMAL_SIMULATE_BASE_LOAD_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace camal::simulate {

/// Parameters of the non-target household load: everything in the aggregate
/// that is *not* the appliance of interest (the cumulative noise term v(t)
/// of Equation 4).
struct BaseLoadConfig {
  double standby_w = 60.0;          ///< always-on electronics
  double fridge_w = 110.0;          ///< fridge compressor amplitude
  double fridge_period_minutes = 55.0;
  double fridge_duty = 0.42;
  double lighting_peak_w = 220.0;   ///< evening lighting peak
  double noise_std_w = 18.0;        ///< measurement noise epsilon(t)
  /// Distractor appliances: random rectangular pulses from unmodelled
  /// devices (TV, oven, vacuum...). Rate is starts per day.
  double distractor_rate_per_day = 6.0;
  double distractor_min_w = 150.0;
  double distractor_max_w = 2500.0;
  double distractor_min_minutes = 3.0;
  double distractor_max_minutes = 45.0;
};

/// Synthesizes \p num_samples of base load (Watts) at \p interval_seconds.
/// The series starts at midnight; the diurnal lighting component repeats
/// every 24 h.
std::vector<float> GenerateBaseLoad(int64_t num_samples,
                                    double interval_seconds,
                                    const BaseLoadConfig& config, Rng* rng);

}  // namespace camal::simulate

#endif  // CAMAL_SIMULATE_BASE_LOAD_H_
