#include "simulate/signature.h"

#include <algorithm>
#include <cmath>

namespace camal::simulate {
namespace {

// Appends a constant-power phase of `seconds` duration with multiplicative
// jitter.
void AppendPhase(std::vector<float>* out, double seconds, double watts,
                 double jitter, double interval_seconds, Rng* rng) {
  const auto n = static_cast<int64_t>(
      std::max(1.0, std::round(seconds / interval_seconds)));
  for (int64_t i = 0; i < n; ++i) {
    const double w = watts * (1.0 + rng->Gaussian(0.0, jitter));
    out->push_back(static_cast<float>(std::max(0.0, w)));
  }
}

}  // namespace

const char* ApplianceName(ApplianceType type) {
  switch (type) {
    case ApplianceType::kDishwasher:
      return "dishwasher";
    case ApplianceType::kKettle:
      return "kettle";
    case ApplianceType::kMicrowave:
      return "microwave";
    case ApplianceType::kWashingMachine:
      return "washing_machine";
    case ApplianceType::kShower:
      return "shower";
    case ApplianceType::kElectricVehicle:
      return "electric_vehicle";
  }
  return "unknown";
}

data::ApplianceSpec SpecFor(ApplianceType type) {
  // ON Power / Avg. Power from Table I of the paper.
  switch (type) {
    case ApplianceType::kDishwasher:
      return {"dishwasher", 300.0f, 800.0f};
    case ApplianceType::kKettle:
      return {"kettle", 500.0f, 2000.0f};
    case ApplianceType::kMicrowave:
      return {"microwave", 200.0f, 1000.0f};
    case ApplianceType::kWashingMachine:
      return {"washing_machine", 300.0f, 500.0f};
    case ApplianceType::kShower:
      return {"shower", 1000.0f, 8000.0f};
    case ApplianceType::kElectricVehicle:
      return {"electric_vehicle", 1000.0f, 4000.0f};
  }
  return {"unknown", 0.0f, 0.0f};
}

std::vector<float> GenerateActivation(ApplianceType type,
                                      double interval_seconds, Rng* rng) {
  std::vector<float> out;
  switch (type) {
    case ApplianceType::kKettle: {
      const double secs = rng->Uniform(90.0, 300.0);
      const double watts = rng->Uniform(1800.0, 2300.0);
      AppendPhase(&out, secs, watts, 0.02, interval_seconds, rng);
      break;
    }
    case ApplianceType::kMicrowave: {
      const int bursts = static_cast<int>(rng->UniformInt(1, 3));
      for (int b = 0; b < bursts; ++b) {
        const double secs = rng->Uniform(45.0, 240.0);
        const double watts = rng->Uniform(900.0, 1300.0);
        AppendPhase(&out, secs, watts, 0.05, interval_seconds, rng);
        if (b + 1 < bursts) {
          AppendPhase(&out, rng->Uniform(20.0, 90.0), 5.0, 0.2,
                      interval_seconds, rng);
        }
      }
      break;
    }
    case ApplianceType::kDishwasher: {
      // Pre-wash, heat 1, wash, heat 2, dry: the classic two-hump cycle.
      AppendPhase(&out, rng->Uniform(300.0, 900.0), 60.0, 0.2,
                  interval_seconds, rng);
      AppendPhase(&out, rng->Uniform(600.0, 1200.0),
                  rng->Uniform(1800.0, 2200.0), 0.03, interval_seconds, rng);
      AppendPhase(&out, rng->Uniform(900.0, 1800.0), 110.0, 0.25,
                  interval_seconds, rng);
      AppendPhase(&out, rng->Uniform(480.0, 900.0),
                  rng->Uniform(1800.0, 2200.0), 0.03, interval_seconds, rng);
      AppendPhase(&out, rng->Uniform(600.0, 1500.0), 40.0, 0.3,
                  interval_seconds, rng);
      break;
    }
    case ApplianceType::kWashingMachine: {
      // Heating plateau then an oscillating drum/spin load.
      AppendPhase(&out, rng->Uniform(600.0, 1200.0),
                  rng->Uniform(1800.0, 2100.0), 0.03, interval_seconds, rng);
      const double spin_secs = rng->Uniform(2400.0, 4200.0);
      const auto n = static_cast<int64_t>(
          std::max(1.0, std::round(spin_secs / interval_seconds)));
      for (int64_t i = 0; i < n; ++i) {
        const double phase = 2.0 * M_PI * static_cast<double>(i) / 8.0;
        const double w = 400.0 + 250.0 * std::sin(phase) +
                         rng->Gaussian(0.0, 60.0);
        out.push_back(static_cast<float>(std::max(30.0, w)));
      }
      break;
    }
    case ApplianceType::kShower: {
      const double secs = rng->Uniform(240.0, 720.0);
      const double watts = rng->Uniform(7200.0, 8800.0);
      AppendPhase(&out, secs, watts, 0.02, interval_seconds, rng);
      break;
    }
    case ApplianceType::kElectricVehicle: {
      const double secs = rng->Uniform(3600.0, 6.0 * 3600.0);
      const double watts = rng->Uniform(3500.0, 4300.0);
      AppendPhase(&out, secs * 0.9, watts, 0.02, interval_seconds, rng);
      // Constant-voltage taper at the end of the charge.
      const auto taper = static_cast<int64_t>(
          std::max(1.0, std::round(secs * 0.1 / interval_seconds)));
      for (int64_t i = 0; i < taper; ++i) {
        const double frac = 1.0 - static_cast<double>(i + 1) /
                                      static_cast<double>(taper + 1);
        out.push_back(static_cast<float>(watts * std::max(0.15, frac)));
      }
      break;
    }
  }
  if (out.empty()) out.push_back(0.0f);
  return out;
}

double DefaultActivationsPerDay(ApplianceType type) {
  switch (type) {
    case ApplianceType::kKettle:
      return 3.0;
    case ApplianceType::kMicrowave:
      return 2.0;
    case ApplianceType::kDishwasher:
      return 0.7;
    case ApplianceType::kWashingMachine:
      return 0.5;
    case ApplianceType::kShower:
      return 1.2;
    case ApplianceType::kElectricVehicle:
      return 0.6;
  }
  return 1.0;
}

double UsageWeightAtHour(ApplianceType type, double hour) {
  auto bump = [](double h, double center, double width) {
    double d = std::fabs(h - center);
    d = std::min(d, 24.0 - d);  // circular distance
    return std::exp(-0.5 * (d / width) * (d / width));
  };
  switch (type) {
    case ApplianceType::kKettle:
      return 0.1 + bump(hour, 7.5, 1.5) + 0.6 * bump(hour, 13.0, 2.0) +
             0.8 * bump(hour, 18.0, 2.5);
    case ApplianceType::kMicrowave:
      return 0.1 + 0.7 * bump(hour, 12.5, 1.5) + bump(hour, 19.0, 2.0);
    case ApplianceType::kDishwasher:
      return 0.05 + 0.6 * bump(hour, 13.5, 2.0) + bump(hour, 20.5, 2.0);
    case ApplianceType::kWashingMachine:
      return 0.1 + bump(hour, 10.0, 3.0) + 0.7 * bump(hour, 17.0, 3.0);
    case ApplianceType::kShower:
      return 0.05 + bump(hour, 7.0, 1.2) + 0.7 * bump(hour, 21.5, 1.5);
    case ApplianceType::kElectricVehicle:
      return 0.05 + bump(hour, 23.0, 3.0) + 0.5 * bump(hour, 2.0, 3.0);
  }
  return 1.0;
}

}  // namespace camal::simulate
