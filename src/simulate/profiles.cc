#include "simulate/profiles.h"

#include <algorithm>
#include <cmath>

namespace camal::simulate {

DatasetProfile UkdaleProfile() {
  DatasetProfile p;
  p.name = "UKDALE";
  p.num_submetered_houses = 5;
  p.num_possession_only = 0;
  p.interval_seconds = 60.0;
  p.days = 28.0;
  p.appliances = {{ApplianceType::kDishwasher, 1.0},
                  {ApplianceType::kMicrowave, 1.0},
                  {ApplianceType::kKettle, 1.0}};
  p.missing_fraction = 0.01;
  return p;
}

DatasetProfile RefitProfile() {
  DatasetProfile p;
  p.name = "REFIT";
  p.num_submetered_houses = 20;
  p.num_possession_only = 0;
  p.interval_seconds = 60.0;
  p.days = 21.0;
  p.appliances = {{ApplianceType::kDishwasher, 0.9},
                  {ApplianceType::kWashingMachine, 0.95},
                  {ApplianceType::kMicrowave, 0.9},
                  {ApplianceType::kKettle, 0.95}};
  p.missing_fraction = 0.015;
  return p;
}

DatasetProfile IdealProfile() {
  DatasetProfile p;
  p.name = "IDEAL";
  p.num_submetered_houses = 39;
  p.num_possession_only = 216;
  p.interval_seconds = 600.0;  // 10-min stand-in for IDEAL's coarse series
  p.days = 42.0;
  p.appliances = {{ApplianceType::kDishwasher, 0.55},
                  {ApplianceType::kWashingMachine, 0.85},
                  {ApplianceType::kShower, 0.6}};
  p.missing_fraction = 0.02;
  return p;
}

DatasetProfile EdfEvProfile() {
  DatasetProfile p;
  p.name = "EDF_EV";
  p.num_submetered_houses = 24;
  p.num_possession_only = 0;
  p.interval_seconds = 1800.0;
  p.days = 90.0;
  p.appliances = {{ApplianceType::kElectricVehicle, 1.0}};
  p.missing_fraction = 0.02;
  return p;
}

DatasetProfile EdfWeakProfile() {
  DatasetProfile p;
  p.name = "EDF_WEAK";
  p.num_submetered_houses = 0;
  p.num_possession_only = 558;
  p.interval_seconds = 1800.0;
  p.days = 90.0;
  p.appliances = {{ApplianceType::kElectricVehicle, 0.5}};
  p.missing_fraction = 0.02;
  return p;
}

std::vector<DatasetProfile> AllEvaluationProfiles() {
  return {UkdaleProfile(), RefitProfile(), IdealProfile(), EdfEvProfile()};
}

std::vector<data::HouseRecord> SimulateDataset(const DatasetProfile& profile,
                                               double scale, uint64_t seed) {
  CAMAL_CHECK_GT(scale, 0.0);
  CAMAL_CHECK_LE(scale, 1.0);
  Rng rng(seed);

  auto scaled = [&](int count) {
    if (count == 0) return 0;
    // Keep at least 4 houses so house-level train/valid/test splits stay
    // possible at small bench scales.
    return std::max(4, static_cast<int>(std::floor(count * scale)));
  };
  const int n_sub = scaled(profile.num_submetered_houses);
  const int n_poss = scaled(profile.num_possession_only);
  // Floor the recording length so coarse-interval profiles (e.g. 30-minute
  // EDF data) still yield enough tumbling windows per house for training.
  constexpr double kMinSamplesPerHouse = 2560.0;
  const double min_days =
      kMinSamplesPerHouse * profile.interval_seconds / 86400.0;
  const double days = std::max({2.0, min_days, profile.days * scale});

  std::vector<data::HouseRecord> houses;
  houses.reserve(static_cast<size_t>(n_sub + n_poss));
  int next_id = 1;
  for (int kind = 0; kind < 2; ++kind) {
    const bool submetered = kind == 0;
    const int count = submetered ? n_sub : n_poss;
    for (int h = 0; h < count; ++h) {
      HouseholdConfig config;
      config.house_id = next_id++;
      config.interval_seconds = profile.interval_seconds;
      config.days = days;
      config.missing_fraction = profile.missing_fraction;
      // Per-house base-load variation.
      config.base_load.standby_w = rng.Uniform(40.0, 90.0);
      config.base_load.lighting_peak_w = rng.Uniform(120.0, 320.0);
      config.base_load.distractor_rate_per_day = rng.Uniform(3.0, 10.0);
      for (const auto& pa : profile.appliances) {
        // Submetered houses always own (and monitor) the profile
        // appliances — they were instrumented for exactly that purpose in
        // the real datasets. Ownership probability shapes the
        // possession-only cohort, where negatives are needed.
        if (submetered) {
          if (pa.ownership_probability <= 0.0) continue;
        } else if (!rng.Bernoulli(pa.ownership_probability)) {
          continue;
        }
        InstalledAppliance installed;
        installed.type = pa.type;
        installed.submetered = submetered;
        // Per-house usage-rate variation around the type default.
        installed.activations_per_day =
            DefaultActivationsPerDay(pa.type) * rng.Uniform(0.6, 1.5);
        config.appliances.push_back(installed);
      }
      Rng house_rng = rng.Fork();
      houses.push_back(SimulateHousehold(config, &house_rng));
    }
  }
  return houses;
}

}  // namespace camal::simulate
