#ifndef CAMAL_BASELINES_UNET_NILM_H_
#define CAMAL_BASELINES_UNET_NILM_H_

#include <memory>

#include "baselines/registry.h"
#include "common/rng.h"
#include "nn/module.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "nn/upsample.h"

namespace camal::baselines {

/// UNet-NILM (Faustine et al. [27]): a 1-D U-Net with two down/up levels
/// and skip connections, ending in a 1x1-conv status head.
///
/// Window length must be divisible by 4.
class UnetNilm : public nn::Module {
 public:
  UnetNilm(const BaselineScale& scale, Rng* rng);

  /// (N, 1, L) -> (N, L) frame logits.
  nn::Tensor Forward(const nn::Tensor& x) override;
  nn::Tensor Backward(const nn::Tensor& grad_output) override;

  /// Batched inference path: every DoubleConv runs fused
  /// Conv+BN+ReLU GEMM passes, pooling skips the argmax bookkeeping, and
  /// no backward caches are kept. (The pre-pool activations a1/a2 feed
  /// the skip connections, so they must materialize — the encoder pools
  /// here are the one spot the fused-pool epilogue legitimately cannot
  /// claim.) Agrees with eval-mode Forward to float rounding.
  nn::Tensor ForwardInference(const nn::Tensor& x) override;
  void CollectParameters(std::vector<nn::Parameter*>* out) override;
  void CollectBuffers(std::vector<nn::Tensor*>* out) override;
  void SetTraining(bool training) override;

 private:
  int64_t c1_, c2_, c3_;
  std::unique_ptr<nn::Sequential> enc1_, enc2_, bottleneck_;
  std::unique_ptr<nn::MaxPool1d> pool1_, pool2_;
  std::unique_ptr<nn::UpsampleNearest1d> up2_, up1_;
  std::unique_ptr<nn::Sequential> dec2_, dec1_, head_;
  int64_t last_n_ = 0, last_l_ = 0;
};

}  // namespace camal::baselines

#endif  // CAMAL_BASELINES_UNET_NILM_H_
