#include "baselines/fhmm.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace camal::baselines {
namespace {

// Log of a Gaussian density (unnormalized constants kept: they cancel in
// the posteriors and Viterbi comparisons only within a fixed sigma).
double LogGauss(double x, double mean, double sigma) {
  const double z = (x - mean) / sigma;
  return -0.5 * z * z - std::log(sigma);
}

double LogSumExp(double a, double b) {
  const double m = std::max(a, b);
  if (!std::isfinite(m)) return m;
  return m + std::log(std::exp(a - m) + std::exp(b - m));
}

}  // namespace

nn::Tensor PredictFhmmStatus(const data::WindowDataset& dataset,
                             const FhmmOptions& options) {
  CAMAL_CHECK_GE(options.em_iterations, 0);
  CAMAL_CHECK_GT(options.self_transition, 0.0);
  CAMAL_CHECK_LT(options.self_transition, 1.0);
  const int64_t n = dataset.size(), l = dataset.window_length;
  nn::Tensor status({n, l});
  const double pa = dataset.appliance.avg_power_w / 1000.0;  // scaled kW
  const double sigma =
      std::max(0.05, options.sigma_fraction * pa);
  const double log_stay = std::log(options.self_transition);
  const double log_switch = std::log(1.0 - options.self_transition);

  std::vector<double> x(static_cast<size_t>(l));
  std::vector<double> sorted(static_cast<size_t>(l));
  // log alpha/beta for the 2 states.
  std::vector<double> la0(static_cast<size_t>(l)), la1(static_cast<size_t>(l));
  std::vector<double> lb0(static_cast<size_t>(l)), lb1(static_cast<size_t>(l));

  for (int64_t i = 0; i < n; ++i) {
    for (int64_t t = 0; t < l; ++t) {
      x[static_cast<size_t>(t)] = dataset.inputs.at3(i, 0, t);
      sorted[static_cast<size_t>(t)] = x[static_cast<size_t>(t)];
    }
    std::sort(sorted.begin(), sorted.end());
    const auto q_idx = static_cast<size_t>(std::min<double>(
        static_cast<double>(l - 1),
        std::floor(options.baseline_quantile * static_cast<double>(l))));
    double mu_off = sorted[q_idx];
    double mu_on = mu_off + pa;

    // Baum-Welch refinement of the emission means.
    for (int iter = 0; iter < options.em_iterations; ++iter) {
      // Forward pass (log domain); uniform initial state.
      la0[0] = LogGauss(x[0], mu_off, sigma);
      la1[0] = LogGauss(x[0], mu_on, sigma);
      for (int64_t t = 1; t < l; ++t) {
        const size_t u = static_cast<size_t>(t);
        la0[u] = LogGauss(x[u], mu_off, sigma) +
                 LogSumExp(la0[u - 1] + log_stay, la1[u - 1] + log_switch);
        la1[u] = LogGauss(x[u], mu_on, sigma) +
                 LogSumExp(la1[u - 1] + log_stay, la0[u - 1] + log_switch);
      }
      // Backward pass.
      lb0[static_cast<size_t>(l - 1)] = 0.0;
      lb1[static_cast<size_t>(l - 1)] = 0.0;
      for (int64_t t = l - 2; t >= 0; --t) {
        const size_t u = static_cast<size_t>(t);
        const double e0 = LogGauss(x[u + 1], mu_off, sigma) + lb0[u + 1];
        const double e1 = LogGauss(x[u + 1], mu_on, sigma) + lb1[u + 1];
        lb0[u] = LogSumExp(log_stay + e0, log_switch + e1);
        lb1[u] = LogSumExp(log_stay + e1, log_switch + e0);
      }
      // Posterior-weighted mean update (M-step).
      double w_off = 0.0, w_on = 0.0, s_off = 0.0, s_on = 0.0;
      for (int64_t t = 0; t < l; ++t) {
        const size_t u = static_cast<size_t>(t);
        const double g0 = la0[u] + lb0[u];
        const double g1 = la1[u] + lb1[u];
        const double norm = LogSumExp(g0, g1);
        const double p_on = std::exp(g1 - norm);
        w_on += p_on;
        w_off += 1.0 - p_on;
        s_on += p_on * x[u];
        s_off += (1.0 - p_on) * x[u];
      }
      if (w_off > 1e-6) mu_off = s_off / w_off;
      if (w_on > 1e-6) mu_on = s_on / w_on;
      // Keep the states identifiable: ON must stay above OFF by a margin.
      if (mu_on < mu_off + 0.25 * pa) mu_on = mu_off + 0.25 * pa;
    }

    // Viterbi decode.
    std::vector<double> v0(static_cast<size_t>(l)), v1(static_cast<size_t>(l));
    std::vector<uint8_t> from0(static_cast<size_t>(l)),
        from1(static_cast<size_t>(l));
    v0[0] = LogGauss(x[0], mu_off, sigma);
    v1[0] = LogGauss(x[0], mu_on, sigma);
    for (int64_t t = 1; t < l; ++t) {
      const size_t u = static_cast<size_t>(t);
      const double stay0 = v0[u - 1] + log_stay;
      const double jump0 = v1[u - 1] + log_switch;
      from0[u] = stay0 >= jump0 ? 0 : 1;
      v0[u] = LogGauss(x[u], mu_off, sigma) + std::max(stay0, jump0);
      const double stay1 = v1[u - 1] + log_stay;
      const double jump1 = v0[u - 1] + log_switch;
      from1[u] = stay1 >= jump1 ? 1 : 0;
      v1[u] = LogGauss(x[u], mu_on, sigma) + std::max(stay1, jump1);
    }
    uint8_t state = v1[static_cast<size_t>(l - 1)] >
                            v0[static_cast<size_t>(l - 1)]
                        ? 1
                        : 0;
    for (int64_t t = l - 1; t >= 0; --t) {
      const size_t u = static_cast<size_t>(t);
      status.at2(i, t) = state == 1 ? 1.0f : 0.0f;
      state = state == 1 ? from1[u] : from0[u];
    }
  }
  return status;
}

}  // namespace camal::baselines
