#ifndef CAMAL_BASELINES_TRANSNILM_H_
#define CAMAL_BASELINES_TRANSNILM_H_

#include <memory>
#include <vector>

#include "baselines/registry.h"
#include "common/rng.h"
#include "nn/attention.h"
#include "nn/layernorm.h"
#include "nn/module.h"
#include "nn/sequential.h"

namespace camal::baselines {

/// One pre-head transformer encoder block (post-norm):
///   h = LN1(x + MHSA(x));  out = LN2(h + FFN(h))
/// with a 1x1-conv GELU feed-forward network.
class TransformerBlock : public nn::Module {
 public:
  TransformerBlock(int64_t d_model, int64_t num_heads, Rng* rng);

  nn::Tensor Forward(const nn::Tensor& x) override;
  nn::Tensor Backward(const nn::Tensor& grad_output) override;

  /// Cache-free block: attention keeps no Q/K/V/softmax caches, layer
  /// norms keep no x_hat, and the FFN convs run the inference GEMM.
  nn::Tensor ForwardInference(const nn::Tensor& x) override;

  void CollectParameters(std::vector<nn::Parameter*>* out) override;
  void CollectBuffers(std::vector<nn::Tensor*>* out) override;
  void SetTraining(bool training) override;

 private:
  std::unique_ptr<nn::MultiHeadSelfAttention> mhsa_;
  std::unique_ptr<nn::LayerNorm> ln1_, ln2_;
  std::unique_ptr<nn::Sequential> ffn_;
};

/// TransNILM (Cheng et al. [31]): convolutional embedding, stacked
/// transformer encoder blocks, and a per-timestamp 1x1-conv status head.
/// The quadratic attention cost dominates its Table II complexity row.
class TransNilm : public nn::Module {
 public:
  TransNilm(const BaselineScale& scale, Rng* rng);

  /// (N, 1, L) -> (N, L) frame logits.
  nn::Tensor Forward(const nn::Tensor& x) override;
  nn::Tensor Backward(const nn::Tensor& grad_output) override;

  /// Batched inference path: fused Conv+BN+ReLU embedding and cache-free
  /// transformer blocks. Agrees with eval-mode Forward to float rounding.
  nn::Tensor ForwardInference(const nn::Tensor& x) override;

  void CollectParameters(std::vector<nn::Parameter*>* out) override;
  void CollectBuffers(std::vector<nn::Tensor*>* out) override;
  void SetTraining(bool training) override;

 private:
  std::unique_ptr<nn::Sequential> net_;
  int64_t last_n_ = 0, last_l_ = 0;
};

}  // namespace camal::baselines

#endif  // CAMAL_BASELINES_TRANSNILM_H_
