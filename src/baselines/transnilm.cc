#include "baselines/transnilm.h"

#include "nn/activations.h"
#include "nn/batchnorm1d.h"
#include "nn/conv1d.h"

namespace camal::baselines {

TransformerBlock::TransformerBlock(int64_t d_model, int64_t num_heads,
                                   Rng* rng) {
  mhsa_ = std::make_unique<nn::MultiHeadSelfAttention>(d_model, num_heads,
                                                       rng);
  ln1_ = std::make_unique<nn::LayerNorm>(d_model);
  ln2_ = std::make_unique<nn::LayerNorm>(d_model);
  ffn_ = std::make_unique<nn::Sequential>();
  nn::Conv1dOptions expand;
  expand.in_channels = d_model;
  expand.out_channels = 4 * d_model;
  expand.kernel_size = 1;
  ffn_->Add(std::make_unique<nn::Conv1d>(expand, rng));
  ffn_->Add(std::make_unique<nn::Gelu>());
  nn::Conv1dOptions contract;
  contract.in_channels = 4 * d_model;
  contract.out_channels = d_model;
  contract.kernel_size = 1;
  ffn_->Add(std::make_unique<nn::Conv1d>(contract, rng));
}

nn::Tensor TransformerBlock::Forward(const nn::Tensor& x) {
  nn::Tensor attn = mhsa_->Forward(x);
  nn::Tensor h = ln1_->Forward(nn::Add(x, attn));
  nn::Tensor ff = ffn_->Forward(h);
  return ln2_->Forward(nn::Add(h, ff));
}

nn::Tensor TransformerBlock::ForwardInference(const nn::Tensor& x) {
  nn::Tensor attn = mhsa_->ForwardInference(x);
  nn::Tensor h = ln1_->ForwardInference(nn::Add(x, attn));
  nn::Tensor ff = ffn_->ForwardInference(h);
  return ln2_->ForwardInference(nn::Add(h, ff));
}

nn::Tensor TransformerBlock::Backward(const nn::Tensor& grad_output) {
  nn::Tensor g = ln2_->Backward(grad_output);
  nn::Tensor g_ffn = ffn_->Backward(g);
  nn::Tensor g_h = nn::Add(g, g_ffn);
  g = ln1_->Backward(g_h);
  nn::Tensor g_attn = mhsa_->Backward(g);
  return nn::Add(g, g_attn);
}

void TransformerBlock::CollectParameters(std::vector<nn::Parameter*>* out) {
  mhsa_->CollectParameters(out);
  ln1_->CollectParameters(out);
  ffn_->CollectParameters(out);
  ln2_->CollectParameters(out);
}

void TransformerBlock::CollectBuffers(std::vector<nn::Tensor*>* out) {
  ffn_->CollectBuffers(out);
}

void TransformerBlock::SetTraining(bool training) {
  Module::SetTraining(training);
  mhsa_->SetTraining(training);
  ln1_->SetTraining(training);
  ffn_->SetTraining(training);
  ln2_->SetTraining(training);
}

TransNilm::TransNilm(const BaselineScale& scale, Rng* rng) {
  // d_model must stay divisible by the head count after scaling.
  const int64_t heads = 4;
  int64_t d = scale.Channels(192);
  d = std::max<int64_t>(heads, (d / heads) * heads);
  net_ = std::make_unique<nn::Sequential>();
  nn::Conv1dOptions embed;
  embed.in_channels = 1;
  embed.out_channels = d;
  embed.kernel_size = 3;
  embed.padding = embed.SamePadding();
  embed.bias = false;
  net_->Add(std::make_unique<nn::Conv1d>(embed, rng));
  net_->Add(std::make_unique<nn::BatchNorm1d>(d));
  net_->Add(std::make_unique<nn::ReLU>());
  net_->Add(std::make_unique<TransformerBlock>(d, heads, rng));
  net_->Add(std::make_unique<TransformerBlock>(d, heads, rng));
  net_->Add(std::make_unique<TransformerBlock>(d, heads, rng));
  nn::Conv1dOptions head;
  head.in_channels = d;
  head.out_channels = 1;
  head.kernel_size = 1;
  net_->Add(std::make_unique<nn::Conv1d>(head, rng));
}

nn::Tensor TransNilm::Forward(const nn::Tensor& x) {
  last_n_ = x.dim(0);
  last_l_ = x.dim(2);
  return net_->Forward(x).Reshape({last_n_, last_l_});
}

nn::Tensor TransNilm::ForwardInference(const nn::Tensor& x) {
  const int64_t n = x.dim(0), l = x.dim(2);
  return net_->ForwardInference(x).Reshape({n, l});
}

nn::Tensor TransNilm::Backward(const nn::Tensor& grad_output) {
  return net_->Backward(grad_output.Reshape({last_n_, 1, last_l_}));
}

void TransNilm::CollectParameters(std::vector<nn::Parameter*>* out) {
  net_->CollectParameters(out);
}

void TransNilm::CollectBuffers(std::vector<nn::Tensor*>* out) {
  net_->CollectBuffers(out);
}

void TransNilm::SetTraining(bool training) {
  Module::SetTraining(training);
  net_->SetTraining(training);
}

}  // namespace camal::baselines
