#include "baselines/unet_nilm.h"

#include "nn/activations.h"
#include "nn/batchnorm1d.h"
#include "nn/conv1d.h"

namespace camal::baselines {
namespace {

std::unique_ptr<nn::Sequential> DoubleConv(int64_t in_ch, int64_t out_ch,
                                           Rng* rng) {
  auto seq = std::make_unique<nn::Sequential>();
  for (int i = 0; i < 2; ++i) {
    nn::Conv1dOptions opt;
    opt.in_channels = i == 0 ? in_ch : out_ch;
    opt.out_channels = out_ch;
    opt.kernel_size = 3;
    opt.padding = opt.SamePadding();
    opt.bias = false;
    seq->Add(std::make_unique<nn::Conv1d>(opt, rng));
    seq->Add(std::make_unique<nn::BatchNorm1d>(out_ch));
    seq->Add(std::make_unique<nn::ReLU>());
  }
  return seq;
}

}  // namespace

UnetNilm::UnetNilm(const BaselineScale& scale, Rng* rng) {
  c1_ = scale.Channels(64);
  c2_ = scale.Channels(128);
  c3_ = scale.Channels(256);
  enc1_ = DoubleConv(1, c1_, rng);
  pool1_ = std::make_unique<nn::MaxPool1d>(2, 2);
  enc2_ = DoubleConv(c1_, c2_, rng);
  pool2_ = std::make_unique<nn::MaxPool1d>(2, 2);
  bottleneck_ = DoubleConv(c2_, c3_, rng);
  up2_ = std::make_unique<nn::UpsampleNearest1d>(2);
  dec2_ = DoubleConv(c3_ + c2_, c2_, rng);
  up1_ = std::make_unique<nn::UpsampleNearest1d>(2);
  dec1_ = DoubleConv(c2_ + c1_, c1_, rng);
  head_ = std::make_unique<nn::Sequential>();
  nn::Conv1dOptions out;
  out.in_channels = c1_;
  out.out_channels = 1;
  out.kernel_size = 1;
  head_->Add(std::make_unique<nn::Conv1d>(out, rng));
}

nn::Tensor UnetNilm::Forward(const nn::Tensor& x) {
  CAMAL_CHECK_EQ(x.ndim(), 3);
  last_n_ = x.dim(0);
  last_l_ = x.dim(2);
  CAMAL_CHECK_MSG(last_l_ % 4 == 0,
                  "UNet-NILM window length must be divisible by 4");
  nn::Tensor a1 = enc1_->Forward(x);            // (N, c1, L)
  nn::Tensor p1 = pool1_->Forward(a1);          // (N, c1, L/2)
  nn::Tensor a2 = enc2_->Forward(p1);           // (N, c2, L/2)
  nn::Tensor p2 = pool2_->Forward(a2);          // (N, c2, L/4)
  nn::Tensor b = bottleneck_->Forward(p2);      // (N, c3, L/4)
  nn::Tensor u2 = up2_->Forward(b);             // (N, c3, L/2)
  nn::Tensor d2 = dec2_->Forward(nn::ConcatChannels({u2, a2}));
  nn::Tensor u1 = up1_->Forward(d2);            // (N, c2, L)
  nn::Tensor d1 = dec1_->Forward(nn::ConcatChannels({u1, a1}));
  return head_->Forward(d1).Reshape({last_n_, last_l_});
}

nn::Tensor UnetNilm::ForwardInference(const nn::Tensor& x) {
  CAMAL_CHECK_EQ(x.ndim(), 3);
  const int64_t n = x.dim(0), l = x.dim(2);
  CAMAL_CHECK_MSG(l % 4 == 0,
                  "UNet-NILM window length must be divisible by 4");
  nn::Tensor a1 = enc1_->ForwardInference(x);        // (N, c1, L)
  nn::Tensor p1 = pool1_->ForwardInference(a1);      // (N, c1, L/2)
  nn::Tensor a2 = enc2_->ForwardInference(p1);       // (N, c2, L/2)
  nn::Tensor p2 = pool2_->ForwardInference(a2);      // (N, c2, L/4)
  nn::Tensor b = bottleneck_->ForwardInference(p2);  // (N, c3, L/4)
  nn::Tensor u2 = up2_->ForwardInference(b);         // (N, c3, L/2)
  nn::Tensor d2 = dec2_->ForwardInference(nn::ConcatChannels({u2, a2}));
  nn::Tensor u1 = up1_->ForwardInference(d2);        // (N, c2, L)
  nn::Tensor d1 = dec1_->ForwardInference(nn::ConcatChannels({u1, a1}));
  return head_->ForwardInference(d1).Reshape({n, l});
}

nn::Tensor UnetNilm::Backward(const nn::Tensor& grad_output) {
  nn::Tensor g = head_->Backward(grad_output.Reshape({last_n_, 1, last_l_}));
  g = dec1_->Backward(g);
  std::vector<nn::Tensor> s1 = nn::SplitChannels(g, {c2_, c1_});
  nn::Tensor g_a1_skip = s1[1];
  g = up1_->Backward(s1[0]);
  g = dec2_->Backward(g);
  std::vector<nn::Tensor> s2 = nn::SplitChannels(g, {c3_, c2_});
  nn::Tensor g_a2_skip = s2[1];
  g = up2_->Backward(s2[0]);
  g = bottleneck_->Backward(g);
  g = pool2_->Backward(g);
  g.AddInPlace(g_a2_skip);
  g = enc2_->Backward(g);
  g = pool1_->Backward(g);
  g.AddInPlace(g_a1_skip);
  return enc1_->Backward(g);
}

void UnetNilm::CollectParameters(std::vector<nn::Parameter*>* out) {
  enc1_->CollectParameters(out);
  enc2_->CollectParameters(out);
  bottleneck_->CollectParameters(out);
  dec2_->CollectParameters(out);
  dec1_->CollectParameters(out);
  head_->CollectParameters(out);
}

void UnetNilm::CollectBuffers(std::vector<nn::Tensor*>* out) {
  enc1_->CollectBuffers(out);
  enc2_->CollectBuffers(out);
  bottleneck_->CollectBuffers(out);
  dec2_->CollectBuffers(out);
  dec1_->CollectBuffers(out);
  head_->CollectBuffers(out);
}

void UnetNilm::SetTraining(bool training) {
  Module::SetTraining(training);
  enc1_->SetTraining(training);
  enc2_->SetTraining(training);
  bottleneck_->SetTraining(training);
  dec2_->SetTraining(training);
  dec1_->SetTraining(training);
  head_->SetTraining(training);
}

}  // namespace camal::baselines
