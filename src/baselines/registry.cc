#include "baselines/registry.h"

#include <cmath>

#include "baselines/bigru.h"
#include "baselines/crnn.h"
#include "baselines/tpnilm.h"
#include "baselines/transnilm.h"
#include "baselines/unet_nilm.h"
#include "common/check.h"

namespace camal::baselines {

const char* BaselineName(BaselineKind kind) {
  switch (kind) {
    case BaselineKind::kUnetNilm:
      return "Unet-NILM";
    case BaselineKind::kTpnilm:
      return "TPNILM";
    case BaselineKind::kBiGru:
      return "BiGRU";
    case BaselineKind::kTransNilm:
      return "TransNILM";
    case BaselineKind::kCrnnStrong:
      return "CRNN";
    case BaselineKind::kCrnnWeak:
      return "CRNN Weak";
  }
  return "unknown";
}

bool IsWeaklySupervised(BaselineKind kind) {
  return kind == BaselineKind::kCrnnWeak;
}

int64_t BaselineScale::Channels(int64_t full_width) const {
  CAMAL_CHECK_GT(width, 0.0);
  const auto scaled = static_cast<int64_t>(
      std::llround(static_cast<double>(full_width) * width));
  return std::max<int64_t>(2, scaled);
}

std::unique_ptr<nn::Module> MakeBaseline(BaselineKind kind,
                                         const BaselineScale& scale,
                                         Rng* rng) {
  switch (kind) {
    case BaselineKind::kUnetNilm:
      return std::make_unique<UnetNilm>(scale, rng);
    case BaselineKind::kTpnilm:
      return std::make_unique<Tpnilm>(scale, rng);
    case BaselineKind::kBiGru:
      return std::make_unique<BiGruModel>(scale, rng);
    case BaselineKind::kTransNilm:
      return std::make_unique<TransNilm>(scale, rng);
    case BaselineKind::kCrnnStrong:
    case BaselineKind::kCrnnWeak:
      return std::make_unique<Crnn>(scale, rng);
  }
  CAMAL_CHECK_MSG(false, "unreachable baseline kind");
  return nullptr;
}

std::vector<BaselineKind> AllBaselines() {
  return {BaselineKind::kCrnnWeak,  BaselineKind::kTpnilm,
          BaselineKind::kBiGru,     BaselineKind::kCrnnStrong,
          BaselineKind::kTransNilm, BaselineKind::kUnetNilm};
}

}  // namespace camal::baselines
