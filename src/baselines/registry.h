#ifndef CAMAL_BASELINES_REGISTRY_H_
#define CAMAL_BASELINES_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/module.h"

namespace camal::baselines {

/// The comparator methods of §V-C. All are sequence-to-sequence models
/// mapping a (N, 1, L) aggregate window to (N, L) per-timestamp activation
/// logits. CRNN exists in a strongly supervised variant and a weakly
/// supervised (MIL) variant that differs only in its training loss.
enum class BaselineKind {
  kUnetNilm,
  kTpnilm,
  kBiGru,
  kTransNilm,
  kCrnnStrong,
  kCrnnWeak,
};

/// Display name matching the paper's figures ("Unet-NILM", "CRNN Weak", ...).
const char* BaselineName(BaselineKind kind);

/// True for the baselines trained with one label per subsequence.
bool IsWeaklySupervised(BaselineKind kind);

/// Channel-width scaling for bounded bench runtimes: 1.0 reproduces
/// paper-scale models (Table II parameter counts), smaller values shrink
/// every hidden width proportionally (min 2 channels).
struct BaselineScale {
  double width = 1.0;

  /// Applies the scale to a full-width channel count.
  int64_t Channels(int64_t full_width) const;
};

/// Instantiates a baseline model. All models accept any window length.
std::unique_ptr<nn::Module> MakeBaseline(BaselineKind kind,
                                         const BaselineScale& scale, Rng* rng);

/// Every baseline, in the paper's reporting order.
std::vector<BaselineKind> AllBaselines();

}  // namespace camal::baselines

#endif  // CAMAL_BASELINES_REGISTRY_H_
