#ifndef CAMAL_BASELINES_BIGRU_H_
#define CAMAL_BASELINES_BIGRU_H_

#include <memory>

#include "baselines/registry.h"
#include "common/rng.h"
#include "nn/module.h"
#include "nn/sequential.h"

namespace camal::baselines {

/// The BiGRU baseline of Precioso & Gomez-Ullate [28]: a light convolutional
/// feature extractor followed by a bidirectional GRU and a 1x1-conv head
/// producing per-timestamp logits.
class BiGruModel : public nn::Module {
 public:
  BiGruModel(const BaselineScale& scale, Rng* rng);

  /// (N, 1, L) -> (N, L) frame logits.
  nn::Tensor Forward(const nn::Tensor& x) override;
  nn::Tensor Backward(const nn::Tensor& grad_output) override;

  /// Batched inference path: fused Conv+ReLU GEMM front-end and the
  /// cache-free BiGRU recurrence (no BPTT gate tensors). Agrees with
  /// eval-mode Forward to float rounding.
  nn::Tensor ForwardInference(const nn::Tensor& x) override;

  void CollectParameters(std::vector<nn::Parameter*>* out) override;
  void CollectBuffers(std::vector<nn::Tensor*>* out) override;
  void SetTraining(bool training) override;

 private:
  std::unique_ptr<nn::Sequential> net_;
  int64_t last_n_ = 0, last_l_ = 0;
};

}  // namespace camal::baselines

#endif  // CAMAL_BASELINES_BIGRU_H_
