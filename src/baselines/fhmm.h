#ifndef CAMAL_BASELINES_FHMM_H_
#define CAMAL_BASELINES_FHMM_H_

#include "data/dataset.h"
#include "nn/tensor.h"

namespace camal::baselines {

/// Options for the factorial-HMM baseline.
struct FhmmOptions {
  /// Baum-Welch refinement iterations of the emission means per window.
  int em_iterations = 3;
  /// Prior probability of staying in the same state between timestamps.
  double self_transition = 0.95;
  /// Emission standard deviation, as a fraction of the appliance average
  /// power (floored at 50 W).
  double sigma_fraction = 0.35;
  /// Quantile of the window used to initialize the OFF-state mean.
  double baseline_quantile = 0.1;
};

/// Unsupervised hidden-Markov NILM (Kim et al. 2011 [21]) specialized to
/// one target appliance: a 2-state (OFF/ON) HMM over the aggregate signal
/// with Gaussian emissions. Per window, emission means are initialized
/// from a low quantile (OFF) and the Table-I average power offset (ON),
/// refined with a few Baum-Welch EM iterations, and the state sequence is
/// decoded with Viterbi. Needs no labels at all — the paper's example of
/// the pre-deep-learning NILM generation whose "accuracy reported is low
/// compared to supervised ones".
///
/// Returns the (N, L) binary status for \p dataset.
nn::Tensor PredictFhmmStatus(const data::WindowDataset& dataset,
                             const FhmmOptions& options = {});

}  // namespace camal::baselines

#endif  // CAMAL_BASELINES_FHMM_H_
