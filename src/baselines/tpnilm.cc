#include "baselines/tpnilm.h"

#include "nn/activations.h"
#include "nn/batchnorm1d.h"
#include "nn/conv1d.h"

namespace camal::baselines {
namespace {

// Appends conv, batchnorm, and relu as SIBLING layers of `seq` (not a
// nested Sequential): Sequential::ForwardInference pattern-matches
// Conv -> BN -> ReLU -> MaxPool runs into one fused GEMM pass, and the
// pool only fuses when it sits in the same layer list as the conv.
void AddConvBnRelu(nn::Sequential* seq, int64_t in_ch, int64_t out_ch,
                   int64_t kernel, Rng* rng) {
  nn::Conv1dOptions opt;
  opt.in_channels = in_ch;
  opt.out_channels = out_ch;
  opt.kernel_size = kernel;
  opt.padding = opt.SamePadding();
  opt.bias = false;
  seq->Add(std::make_unique<nn::Conv1d>(opt, rng));
  seq->Add(std::make_unique<nn::BatchNorm1d>(out_ch));
  seq->Add(std::make_unique<nn::ReLU>());
}

}  // namespace

Tpnilm::Tpnilm(const BaselineScale& scale, Rng* rng) {
  const int64_t c1 = scale.Channels(64);
  const int64_t c2 = scale.Channels(128);
  enc_channels_ = scale.Channels(256);
  branch_channels_ = scale.Channels(64);

  encoder_ = std::make_unique<nn::Sequential>();
  AddConvBnRelu(encoder_.get(), 1, c1, 3, rng);
  encoder_->Add(std::make_unique<nn::MaxPool1d>(2, 2));
  AddConvBnRelu(encoder_.get(), c1, c2, 3, rng);
  encoder_->Add(std::make_unique<nn::MaxPool1d>(2, 2));
  AddConvBnRelu(encoder_.get(), c2, enc_channels_, 3, rng);

  for (int64_t s : {1, 2, 4, 8}) {
    Branch b;
    b.scale = s;
    if (s > 1) b.pool = std::make_unique<nn::AvgPool1d>(s, s);
    auto proj = std::make_unique<nn::Sequential>();
    nn::Conv1dOptions p;
    p.in_channels = enc_channels_;
    p.out_channels = branch_channels_;
    p.kernel_size = 1;
    proj->Add(std::make_unique<nn::Conv1d>(p, rng));
    proj->Add(std::make_unique<nn::ReLU>());
    b.project = std::move(proj);
    branches_.push_back(std::move(b));
  }

  const int64_t concat_ch =
      enc_channels_ + branch_channels_ * static_cast<int64_t>(branches_.size());
  decoder_head_ = std::make_unique<nn::Sequential>();
  AddConvBnRelu(decoder_head_.get(), concat_ch, c2, 1, rng);

  output_head_ = std::make_unique<nn::Sequential>();
  nn::Conv1dOptions out;
  out.in_channels = c2;
  out.out_channels = 1;
  out.kernel_size = 1;
  output_head_->Add(std::make_unique<nn::Conv1d>(out, rng));
}

nn::Tensor Tpnilm::Forward(const nn::Tensor& x) {
  CAMAL_CHECK_EQ(x.ndim(), 3);
  last_n_ = x.dim(0);
  last_l_ = x.dim(2);
  CAMAL_CHECK_MSG(last_l_ % 4 == 0 && last_l_ >= 32,
                  "TPNILM window length must be divisible by 4 and >= 32");
  nn::Tensor enc = encoder_->Forward(x);  // (N, C, L/4)
  const int64_t lenc = enc.dim(2);

  std::vector<nn::Tensor> parts;
  parts.push_back(enc);
  for (auto& b : branches_) {
    nn::Tensor h = b.pool ? b.pool->Forward(enc) : enc;
    h = b.project->Forward(h);
    if (b.scale > 1) {
      b.resize = std::make_unique<nn::ResizeNearest1d>(lenc);
      h = b.resize->Forward(h);
    }
    parts.push_back(std::move(h));
  }
  nn::Tensor concat = nn::ConcatChannels(parts);
  nn::Tensor dec = decoder_head_->Forward(concat);
  final_resize_ = std::make_unique<nn::ResizeNearest1d>(last_l_);
  nn::Tensor up = final_resize_->Forward(dec);
  nn::Tensor y = output_head_->Forward(up);  // (N, 1, L)
  return y.Reshape({last_n_, last_l_});
}

nn::Tensor Tpnilm::ForwardInference(const nn::Tensor& x) {
  CAMAL_CHECK_EQ(x.ndim(), 3);
  const int64_t n = x.dim(0), l = x.dim(2);
  CAMAL_CHECK_MSG(l % 4 == 0 && l >= 32,
                  "TPNILM window length must be divisible by 4 and >= 32");
  // The encoder's Conv+BN+ReLU+MaxPool(2,2) runs collapse into fused
  // GEMM-with-pool passes here; the L-sized and L/2-sized pre-pool
  // activations are never materialized.
  nn::Tensor enc = encoder_->ForwardInference(x);  // (N, C, L/4)
  const int64_t lenc = enc.dim(2);

  std::vector<nn::Tensor> parts;
  parts.push_back(enc);
  for (auto& b : branches_) {
    nn::Tensor h = b.pool ? b.pool->ForwardInference(enc) : enc;
    h = b.project->ForwardInference(h);
    if (b.scale > 1) {
      nn::ResizeNearest1d resize(lenc);
      h = resize.ForwardInference(h);
    }
    parts.push_back(std::move(h));
  }
  nn::Tensor concat = nn::ConcatChannels(parts);
  nn::Tensor dec = decoder_head_->ForwardInference(concat);
  nn::ResizeNearest1d final_resize(l);
  nn::Tensor up = final_resize.ForwardInference(dec);
  nn::Tensor y = output_head_->ForwardInference(up);  // (N, 1, L)
  return y.Reshape({n, l});
}

nn::Tensor Tpnilm::Backward(const nn::Tensor& grad_output) {
  nn::Tensor g = output_head_->Backward(
      grad_output.Reshape({last_n_, 1, last_l_}));
  g = final_resize_->Backward(g);
  g = decoder_head_->Backward(g);
  // Split concat gradient: [enc, branch_0, branch_1, ...].
  std::vector<int64_t> channel_counts;
  channel_counts.push_back(enc_channels_);
  for (size_t i = 0; i < branches_.size(); ++i) {
    channel_counts.push_back(branch_channels_);
  }
  std::vector<nn::Tensor> grads = nn::SplitChannels(g, channel_counts);
  nn::Tensor g_enc = grads[0];
  for (size_t i = 0; i < branches_.size(); ++i) {
    auto& b = branches_[i];
    nn::Tensor gb = grads[i + 1];
    if (b.scale > 1) gb = b.resize->Backward(gb);
    gb = b.project->Backward(gb);
    if (b.pool) gb = b.pool->Backward(gb);
    g_enc.AddInPlace(gb);
  }
  return encoder_->Backward(g_enc);
}

void Tpnilm::CollectParameters(std::vector<nn::Parameter*>* out) {
  encoder_->CollectParameters(out);
  for (auto& b : branches_) b.project->CollectParameters(out);
  decoder_head_->CollectParameters(out);
  output_head_->CollectParameters(out);
}

void Tpnilm::CollectBuffers(std::vector<nn::Tensor*>* out) {
  encoder_->CollectBuffers(out);
  for (auto& b : branches_) b.project->CollectBuffers(out);
  decoder_head_->CollectBuffers(out);
  output_head_->CollectBuffers(out);
}

void Tpnilm::SetTraining(bool training) {
  Module::SetTraining(training);
  encoder_->SetTraining(training);
  for (auto& b : branches_) b.project->SetTraining(training);
  decoder_head_->SetTraining(training);
  output_head_->SetTraining(training);
}

}  // namespace camal::baselines
