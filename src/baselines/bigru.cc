#include "baselines/bigru.h"

#include "nn/activations.h"
#include "nn/conv1d.h"
#include "nn/gru.h"

namespace camal::baselines {

BiGruModel::BiGruModel(const BaselineScale& scale, Rng* rng) {
  const int64_t c1 = scale.Channels(16);
  const int64_t h = scale.Channels(128);
  net_ = std::make_unique<nn::Sequential>();
  nn::Conv1dOptions conv;
  conv.in_channels = 1;
  conv.out_channels = c1;
  conv.kernel_size = 3;
  conv.padding = conv.SamePadding();
  net_->Add(std::make_unique<nn::Conv1d>(conv, rng));
  net_->Add(std::make_unique<nn::ReLU>());
  net_->Add(std::make_unique<nn::BiGru>(c1, h, rng));
  nn::Conv1dOptions head;
  head.in_channels = 2 * h;
  head.out_channels = 1;
  head.kernel_size = 1;
  net_->Add(std::make_unique<nn::Conv1d>(head, rng));
}

nn::Tensor BiGruModel::Forward(const nn::Tensor& x) {
  last_n_ = x.dim(0);
  last_l_ = x.dim(2);
  return net_->Forward(x).Reshape({last_n_, last_l_});
}

nn::Tensor BiGruModel::ForwardInference(const nn::Tensor& x) {
  const int64_t n = x.dim(0), l = x.dim(2);
  return net_->ForwardInference(x).Reshape({n, l});
}

nn::Tensor BiGruModel::Backward(const nn::Tensor& grad_output) {
  return net_->Backward(grad_output.Reshape({last_n_, 1, last_l_}));
}

void BiGruModel::CollectParameters(std::vector<nn::Parameter*>* out) {
  net_->CollectParameters(out);
}

void BiGruModel::CollectBuffers(std::vector<nn::Tensor*>* out) {
  net_->CollectBuffers(out);
}

void BiGruModel::SetTraining(bool training) {
  Module::SetTraining(training);
  net_->SetTraining(training);
}

}  // namespace camal::baselines
