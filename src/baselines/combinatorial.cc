#include "baselines/combinatorial.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace camal::baselines {

nn::Tensor PredictCoStatus(const data::WindowDataset& dataset,
                           const CoOptions& options) {
  CAMAL_CHECK_GE(options.baseline_quantile, 0.0);
  CAMAL_CHECK_LE(options.baseline_quantile, 1.0);
  const int64_t n = dataset.size(), l = dataset.window_length;
  const float pa_scaled = dataset.appliance.avg_power_w / 1000.0f;
  nn::Tensor status({n, l});
  std::vector<float> sorted(static_cast<size_t>(l));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t t = 0; t < l; ++t) {
      sorted[static_cast<size_t>(t)] = dataset.inputs.at3(i, 0, t);
    }
    std::sort(sorted.begin(), sorted.end());
    const auto q_idx = static_cast<size_t>(std::min<double>(
        static_cast<double>(l - 1),
        std::floor(options.baseline_quantile * static_cast<double>(l))));
    const float base = sorted[q_idx];
    for (int64_t t = 0; t < l; ++t) {
      const float residual = dataset.inputs.at3(i, 0, t) - base;
      status.at2(i, t) = residual > pa_scaled / 2.0f ? 1.0f : 0.0f;
    }
  }
  return status;
}

}  // namespace camal::baselines
