#include "baselines/crnn.h"

#include <cmath>

#include "nn/activations.h"

namespace camal::baselines {
namespace {

std::unique_ptr<nn::Sequential> ConvBnRelu(int64_t in_ch, int64_t out_ch,
                                           int64_t kernel, Rng* rng) {
  auto seq = std::make_unique<nn::Sequential>();
  nn::Conv1dOptions opt;
  opt.in_channels = in_ch;
  opt.out_channels = out_ch;
  opt.kernel_size = kernel;
  opt.padding = opt.SamePadding();
  opt.bias = false;
  seq->Add(std::make_unique<nn::Conv1d>(opt, rng));
  seq->Add(std::make_unique<nn::BatchNorm1d>(out_ch));
  seq->Add(std::make_unique<nn::ReLU>());
  return seq;
}

}  // namespace

Crnn::Crnn(const BaselineScale& scale, Rng* rng) {
  const int64_t c1 = scale.Channels(32);
  const int64_t c2 = scale.Channels(64);
  const int64_t c3 = scale.Channels(128);
  const int64_t h = scale.Channels(192);
  net_ = std::make_unique<nn::Sequential>();
  net_->Add(ConvBnRelu(1, c1, 5, rng));
  net_->Add(ConvBnRelu(c1, c2, 5, rng));
  net_->Add(ConvBnRelu(c2, c3, 5, rng));
  net_->Add(std::make_unique<nn::BiGru>(c3, h, rng));
  nn::Conv1dOptions head;
  head.in_channels = 2 * h;
  head.out_channels = 1;
  head.kernel_size = 1;
  net_->Add(std::make_unique<nn::Conv1d>(head, rng));
}

nn::Tensor Crnn::Forward(const nn::Tensor& x) {
  last_n_ = x.dim(0);
  last_l_ = x.dim(2);
  nn::Tensor y = net_->Forward(x);  // (N, 1, L)
  return y.Reshape({last_n_, last_l_});
}

nn::Tensor Crnn::ForwardInference(const nn::Tensor& x) {
  const int64_t n = x.dim(0), l = x.dim(2);
  return net_->ForwardInference(x).Reshape({n, l});
}

nn::Tensor Crnn::Backward(const nn::Tensor& grad_output) {
  return net_->Backward(grad_output.Reshape({last_n_, 1, last_l_}));
}

void Crnn::CollectParameters(std::vector<nn::Parameter*>* out) {
  net_->CollectParameters(out);
}

void Crnn::CollectBuffers(std::vector<nn::Tensor*>* out) {
  net_->CollectBuffers(out);
}

void Crnn::SetTraining(bool training) {
  Module::SetTraining(training);
  net_->SetTraining(training);
}

nn::Tensor MilSequenceProbability(const nn::Tensor& frame_logits) {
  CAMAL_CHECK_EQ(frame_logits.ndim(), 2);
  const int64_t n = frame_logits.dim(0), l = frame_logits.dim(1);
  nn::Tensor seq_prob({n});
  for (int64_t i = 0; i < n; ++i) {
    double sum_p = 0.0, sum_p2 = 0.0;
    for (int64_t t = 0; t < l; ++t) {
      const double p = nn::SigmoidScalar(frame_logits.at2(i, t));
      sum_p += p;
      sum_p2 += p * p;
    }
    seq_prob.at(i) =
        sum_p > 1e-12 ? static_cast<float>(sum_p2 / sum_p) : 0.0f;
  }
  return seq_prob;
}

nn::LossResult WeakMilLoss(const nn::Tensor& frame_logits,
                           const std::vector<int>& weak_labels) {
  CAMAL_CHECK_EQ(frame_logits.ndim(), 2);
  const int64_t n = frame_logits.dim(0), l = frame_logits.dim(1);
  CAMAL_CHECK_EQ(static_cast<int64_t>(weak_labels.size()), n);
  nn::LossResult out;
  out.grad = nn::Tensor({n, l});
  double total = 0.0;
  constexpr double kEps = 1e-7;
  for (int64_t i = 0; i < n; ++i) {
    std::vector<double> p(static_cast<size_t>(l));
    double sum_p = 0.0, sum_p2 = 0.0;
    for (int64_t t = 0; t < l; ++t) {
      p[static_cast<size_t>(t)] =
          nn::SigmoidScalar(frame_logits.at2(i, t));
      sum_p += p[static_cast<size_t>(t)];
      sum_p2 += p[static_cast<size_t>(t)] * p[static_cast<size_t>(t)];
    }
    sum_p = std::max(sum_p, kEps);
    double big_p = sum_p2 / sum_p;
    big_p = std::min(1.0 - kEps, std::max(kEps, big_p));
    const double y = weak_labels[static_cast<size_t>(i)];
    total += -(y * std::log(big_p) + (1.0 - y) * std::log(1.0 - big_p));
    // dL/dP, then dP/dp_t = (2 p_t sum_p - sum_p2) / sum_p^2, then
    // dp_t/dz_t = p_t (1 - p_t).
    const double dL_dP = (-y / big_p + (1.0 - y) / (1.0 - big_p)) /
                         static_cast<double>(n);
    for (int64_t t = 0; t < l; ++t) {
      const double pt = p[static_cast<size_t>(t)];
      const double dP_dp = (2.0 * pt * sum_p - sum_p2) / (sum_p * sum_p);
      out.grad.at2(i, t) =
          static_cast<float>(dL_dP * dP_dp * pt * (1.0 - pt));
    }
  }
  out.value = total / static_cast<double>(n);
  return out;
}

}  // namespace camal::baselines
