#ifndef CAMAL_BASELINES_TPNILM_H_
#define CAMAL_BASELINES_TPNILM_H_

#include <memory>
#include <vector>

#include "baselines/registry.h"
#include "common/rng.h"
#include "nn/module.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "nn/upsample.h"

namespace camal::baselines {

/// TPNILM (Massidda et al. [26]): a fully convolutional encoder that
/// downsamples the window by 4x, a temporal-pooling module that summarizes
/// the encoded sequence at multiple scales (avg-pool at {1, 2, 4, 8}, 1x1
/// conv, resize back), channel concatenation, and a decoder that restores
/// the input resolution.
///
/// Window length must be divisible by 4 and at least 32.
class Tpnilm : public nn::Module {
 public:
  Tpnilm(const BaselineScale& scale, Rng* rng);

  /// (N, 1, L) -> (N, L) frame logits.
  nn::Tensor Forward(const nn::Tensor& x) override;
  nn::Tensor Backward(const nn::Tensor& grad_output) override;

  /// Batched inference path: encoder Conv+BN+ReLU+MaxPool(2,2) runs
  /// collapse into fused GEMM-with-pool passes (no full-size pre-pool
  /// intermediates), branch/decoder convs run the implicit-im2col GEMM,
  /// and no backward caches are kept. Agrees with eval-mode Forward to
  /// float rounding.
  nn::Tensor ForwardInference(const nn::Tensor& x) override;
  void CollectParameters(std::vector<nn::Parameter*>* out) override;
  void CollectBuffers(std::vector<nn::Tensor*>* out) override;
  void SetTraining(bool training) override;

 private:
  int64_t enc_channels_;
  int64_t branch_channels_;
  std::unique_ptr<nn::Sequential> encoder_;
  // One pooling branch per scale; scale 1 has no pool (identity).
  struct Branch {
    int64_t scale;
    std::unique_ptr<nn::AvgPool1d> pool;       // null for scale 1
    std::unique_ptr<nn::Sequential> project;   // 1x1 conv + ReLU
    std::unique_ptr<nn::ResizeNearest1d> resize;  // rebuilt per forward
  };
  std::vector<Branch> branches_;
  std::unique_ptr<nn::Sequential> decoder_head_;  // 1x1 convs after concat
  std::unique_ptr<nn::ResizeNearest1d> final_resize_;  // rebuilt per forward
  std::unique_ptr<nn::Sequential> output_head_;
  int64_t last_n_ = 0, last_l_ = 0;
};

}  // namespace camal::baselines

#endif  // CAMAL_BASELINES_TPNILM_H_
