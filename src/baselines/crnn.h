#ifndef CAMAL_BASELINES_CRNN_H_
#define CAMAL_BASELINES_CRNN_H_

#include <memory>

#include "common/rng.h"
#include "nn/batchnorm1d.h"
#include "nn/conv1d.h"
#include "nn/gru.h"
#include "nn/loss.h"
#include "nn/module.h"
#include "nn/sequential.h"
#include "baselines/registry.h"

namespace camal::baselines {

/// The Convolutional Recurrent Neural Network of Tanoni et al. [5]:
/// a convolutional front-end followed by a bidirectional GRU and a 1x1
/// convolution producing per-timestamp activation logits (N, L).
///
/// The same architecture serves both CRNN (strong) and CRNN Weak; the MIL
/// pooling that turns frame probabilities into a sequence-level weak
/// prediction lives in WeakMilLoss below.
class Crnn : public nn::Module {
 public:
  Crnn(const BaselineScale& scale, Rng* rng);

  /// (N, 1, L) -> (N, L) frame logits.
  nn::Tensor Forward(const nn::Tensor& x) override;
  nn::Tensor Backward(const nn::Tensor& grad_output) override;

  /// Batched inference path: fused Conv+BN+ReLU GEMM front-end and the
  /// cache-free BiGRU recurrence (no BPTT gate tensors). Agrees with
  /// eval-mode Forward to float rounding.
  nn::Tensor ForwardInference(const nn::Tensor& x) override;

  void CollectParameters(std::vector<nn::Parameter*>* out) override;
  void CollectBuffers(std::vector<nn::Tensor*>* out) override;
  void SetTraining(bool training) override;

 private:
  std::unique_ptr<nn::Sequential> net_;
  int64_t last_n_ = 0, last_l_ = 0;
};

/// Linear-softmax Multiple-Instance-Learning loss for weak labels [5]:
/// frame probabilities p_t = sigmoid(z_t) are pooled into a sequence
/// probability  P = sum(p^2) / sum(p)  and binary cross-entropy is applied
/// between P and the weak label. Returns the loss value and the gradient
/// with respect to the (N, L) frame logits.
nn::LossResult WeakMilLoss(const nn::Tensor& frame_logits,
                           const std::vector<int>& weak_labels);

/// The pooled sequence probabilities (N) for given frame logits — the
/// detection output of CRNN Weak.
nn::Tensor MilSequenceProbability(const nn::Tensor& frame_logits);

}  // namespace camal::baselines

#endif  // CAMAL_BASELINES_CRNN_H_
