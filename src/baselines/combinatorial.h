#ifndef CAMAL_BASELINES_COMBINATORIAL_H_
#define CAMAL_BASELINES_COMBINATORIAL_H_

#include "data/dataset.h"
#include "nn/tensor.h"

namespace camal::baselines {

/// Options for the Combinatorial Optimization baseline.
struct CoOptions {
  /// Quantile of the window used as the always-on baseline estimate.
  double baseline_quantile = 0.05;
};

/// Combinatorial Optimization (Hart 1992 [1]) — the earliest NILM method
/// and the paper's historical reference point. It needs no training at all:
/// at each timestamp the appliance state s in {0, 1} is chosen to minimise
/// |x(t) - base - s * P_a|, where `base` is a per-window quantile estimate
/// of the always-on load. For a single target appliance this reduces to
///   ON  iff  x(t) - base > P_a / 2.
///
/// Returns the (N, L) binary status for \p dataset using its appliance's
/// average power P_a (Table I).
nn::Tensor PredictCoStatus(const data::WindowDataset& dataset,
                           const CoOptions& options = {});

}  // namespace camal::baselines

#endif  // CAMAL_BASELINES_COMBINATORIAL_H_
