#!/usr/bin/env bash
# Runs the repo's clang-tidy gate (.clang-tidy) over every first-party
# translation unit in src/, against a compile_commands.json export.
#
#   scripts/run_clang_tidy.sh [build-dir]
#
# The build dir defaults to build-tidy/ and is configured on demand (tests,
# benches, and examples off — tidy only lints src/*.cc, and a lean compile
# database keeps the run fast). Exits non-zero on any finding: the config
# sets WarningsAsErrors '*', so CI and local runs agree on what blocks.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tidy}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "error: clang-tidy not found on PATH (apt-get install clang-tidy)" >&2
  exit 2
fi

if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  cmake -B "${BUILD_DIR}" -S . \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DCAMAL_BUILD_TESTS=OFF -DCAMAL_BUILD_BENCHES=OFF \
    -DCAMAL_BUILD_EXAMPLES=OFF
fi

# Every first-party TU. Headers are covered transitively through
# HeaderFilterRegex, so a header-only bug still surfaces in the TUs that
# include it. run-clang-tidy parallelizes across cores when available.
mapfile -t SOURCES < <(find src -name '*.cc' | sort)
echo "clang-tidy ($(clang-tidy --version | sed -n 's/.*version /version /p' | head -1)) over ${#SOURCES[@]} files"

if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -p "${BUILD_DIR}" -quiet "${SOURCES[@]/#/$PWD/}"
else
  clang-tidy -p "${BUILD_DIR}" --quiet "${SOURCES[@]}"
fi
echo "clang-tidy: clean"
