#!/usr/bin/env python3
"""Project lint: repo-specific invariants the generic tools cannot express.

Rules (see README "Static analysis"):

  R1  src/serve/ never CAMAL_CHECKs request-derived input. A malformed
      request must come back as a Status through the submitter's future;
      an abort on caller data is a denial-of-service primitive. Heuristic:
      a CAMAL_CHECK* whose condition mentions a `request` expression.
  R2  No naked `new` in src/. Allocation goes through containers,
      make_unique/make_shared, or nn::Tensor's aligned allocator. The rare
      justified site carries `lint: new-ok(<reason>)` in a trailing or
      preceding comment.
  R3  No std::mutex / std::lock_guard / std::unique_lock / std::scoped_lock
      / std::condition_variable outside src/common/mutex.h. Clang Thread
      Safety Analysis cannot see through the unannotated std types, so one
      stray std::lock_guard silently exempts its critical section from the
      -Werror=thread-safety proof.
  R4  CAMAL_NO_THREAD_SAFETY_ANALYSIS is an escape hatch, not a default:
      every use carries `lint: tsa-off(<reason>)`.
  R5  Every bench/bench_*.cc that writes a machine-readable artifact
      (WriteTextFile / *.json) names it BENCH_*.json, so CI's artifact
      steps and humans grepping bench_results/ can rely on the convention.
  R6  Durable files in src/serve/ and src/data/ are written through
      WriteFileAtomic / AtomicFileWriter (common/atomic_file.h), never a
      naked fopen-for-write: a process dying between fopen("w") and
      fclose leaves a torn file where a reader expects a complete
      snapshot — the crash the checkpoint format exists to rule out.
      Heuristic: fopen with a "w"/"a" mode string in those layers. The
      rare justified site carries `lint: fopen-ok(<reason>)`.

Suppressions are per-line and must name a reason; a bare marker fails.
Exit status: 0 clean, 1 findings, 2 usage error.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

SUPPRESS_RE = re.compile(r"lint:\s*(?P<rule>[a-z-]+)-ok\((?P<reason>[^)]+)\)")
TSA_OFF_RE = re.compile(r"lint:\s*tsa-off\((?P<reason>[^)]+)\)")

STD_LOCK_RE = re.compile(
    r"std::(mutex|recursive_mutex|shared_mutex|timed_mutex|lock_guard|"
    r"unique_lock|scoped_lock|shared_lock|condition_variable(_any)?)\b"
)
CHECK_REQUEST_RE = re.compile(r"CAMAL_CHECK\w*\s*\(.*\brequest\b")
# Matched against the RAW line (the stripper blanks string contents, and
# the mode lives in a string literal).
FOPEN_WRITE_RE = re.compile(r"\bfopen\s*\([^;]*\"[wa][b+]*\"")
NAKED_NEW_RE = re.compile(r"(?<![:\w])new\b(?!\s*\()")  # `::new (` = placement
OPERATOR_NEW_RE = re.compile(r"operator\s+new\b")
PLACEMENT_NEW_RE = re.compile(r"::\s*new\s*\(")


def strip_comments_and_strings(text: str) -> list[str]:
    """Returns code lines with comments and string/char literals blanked.

    Keeps line structure (1 output line per input line) so findings carry
    real line numbers. A conservative scanner: handles // and block
    comments, double/single-quoted literals with escapes; raw strings are
    rare enough here to treat like plain ones.
    """
    out = []
    in_block = False
    for line in text.splitlines():
        buf = []
        i = 0
        n = len(line)
        while i < n:
            ch = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if in_block:
                if ch == "*" and nxt == "/":
                    in_block = False
                    i += 2
                else:
                    i += 1
                continue
            if ch == "/" and nxt == "/":
                break
            if ch == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if ch in "\"'":
                quote = ch
                buf.append(quote)
                i += 1
                while i < n:
                    if line[i] == "\\":
                        i += 2
                        continue
                    if line[i] == quote:
                        break
                    i += 1
                buf.append(quote)
                i += 1
                continue
            buf.append(ch)
            i += 1
        out.append("".join(buf))
    return out


def has_suppression(raw_lines: list[str], idx: int, rule: str) -> bool:
    """True when line idx (0-based) or one of the two lines above carries
    rule-ok(...) — two, because a multi-line statement may put the flagged
    token one line below where the comment reads naturally."""
    for j in (idx, idx - 1, idx - 2):
        if 0 <= j < len(raw_lines):
            m = SUPPRESS_RE.search(raw_lines[j])
            if m and m.group("rule") == rule and m.group("reason").strip():
                return True
    return False


def main() -> int:
    findings = []

    def finding(path: Path, lineno: int, rule: str, message: str) -> None:
        rel = path.relative_to(REPO)
        findings.append(f"{rel}:{lineno}: [{rule}] {message}")

    src_files = sorted(
        p for p in (REPO / "src").rglob("*") if p.suffix in {".h", ".cc", ".inc"}
    )
    for path in src_files:
        raw = path.read_text().splitlines()
        code = strip_comments_and_strings(path.read_text())
        in_serve = "src/serve" in path.as_posix()
        in_durable_layer = in_serve or "src/data" in path.as_posix()
        is_mutex_header = path.as_posix().endswith("src/common/mutex.h")

        for idx, line in enumerate(code):
            lineno = idx + 1
            if line.lstrip().startswith("#"):
                continue  # preprocessor (e.g. `#include <new>`)
            if in_serve and CHECK_REQUEST_RE.search(line):
                if not has_suppression(raw, idx, "check"):
                    finding(
                        path, lineno, "R1",
                        "CAMAL_CHECK on request-derived input in src/serve/ "
                        "(return a Status instead; a malformed request must "
                        "not abort the server)")
            if (NAKED_NEW_RE.search(line)
                    and not OPERATOR_NEW_RE.search(line)
                    and not PLACEMENT_NEW_RE.search(line)):
                if not has_suppression(raw, idx, "new"):
                    finding(
                        path, lineno, "R2",
                        "naked `new` (use containers/make_unique, or mark "
                        "the site `lint: new-ok(reason)`)")
            if not is_mutex_header and STD_LOCK_RE.search(line):
                finding(
                    path, lineno, "R3",
                    "raw std lock primitive outside common/mutex.h (use "
                    "camal::Mutex/MutexLock/CondVar so clang thread-safety "
                    "analysis covers the critical section)")
            if (in_durable_layer and "fopen" in line
                    and FOPEN_WRITE_RE.search(raw[idx])):
                if not has_suppression(raw, idx, "fopen"):
                    finding(
                        path, lineno, "R6",
                        "naked fopen-for-write on a persisted path (write "
                        "through WriteFileAtomic/AtomicFileWriter so a "
                        "crash cannot leave a torn file, or mark the site "
                        "`lint: fopen-ok(reason)`)")
            if "CAMAL_NO_THREAD_SAFETY_ANALYSIS" in line and \
                    "define" not in line:
                if not any(TSA_OFF_RE.search(raw[j])
                           for j in (idx, idx - 1) if 0 <= j < len(raw)):
                    finding(
                        path, lineno, "R4",
                        "thread-safety escape hatch without a "
                        "`lint: tsa-off(reason)` justification")

    for path in sorted((REPO / "bench").glob("bench_*.cc")):
        text = path.read_text()
        emits = "WriteTextFile" in text or ".json" in text
        if emits and not re.search(r"BENCH_\w+\.json", text):
            finding(
                path, 1, "R5",
                "bench emits a machine-readable artifact but names no "
                "BENCH_*.json file")

    if findings:
        print(f"check_invariants: {len(findings)} finding(s)")
        for f in findings:
            print(f"  {f}")
        return 1
    print(f"check_invariants: clean ({len(src_files)} src files, "
          f"{len(list((REPO / 'bench').glob('bench_*.cc')))} benches)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
