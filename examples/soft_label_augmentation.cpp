// Soft-label augmentation (§V-I, RQ5): use a trained CamAL model to
// generate per-timestamp *soft* labels on unlabeled houses and train a
// strongly supervised NILM baseline (TPNILM) on them — no submeter data is
// ever used for training.

#include <cstdio>

#include "data/balance.h"
#include "data/split.h"
#include "eval/experiment.h"
#include "simulate/profiles.h"

int main() {
  using namespace camal;
  std::printf("CamAL soft labels -> strongly supervised baseline (RQ5)\n");
  std::printf("--------------------------------------------------------\n");

  const data::ApplianceSpec spec =
      simulate::SpecFor(simulate::ApplianceType::kDishwasher);
  auto houses =
      simulate::SimulateDataset(simulate::RefitProfile(), 0.35, 5);
  Rng rng(6);
  auto split = data::SplitHouses(houses, 1, 2, &rng).value();
  data::BuildOptions opt;
  opt.window_length = 128;
  auto train = data::BuildWindowDataset(split.train, spec, opt).value();
  auto valid = data::BuildWindowDataset(split.valid, spec, opt).value();
  auto test = data::BuildWindowDataset(split.test, spec, opt).value();

  // Step 1: train CamAL on weak labels.
  data::WindowDataset balanced = data::BalanceByWeakLabel(train, &rng);
  core::EnsembleConfig config;
  config.kernel_sizes = {5, 9, 15};
  config.trials_per_kernel = 1;
  config.ensemble_size = 3;
  config.base_filters = 16;
  config.train.max_epochs = 8;
  auto ensemble_result =
      core::CamalEnsemble::Train(balanced, valid, config, 6);
  if (!ensemble_result.ok()) {
    std::fprintf(stderr, "CamAL training failed: %s\n",
                 ensemble_result.status().ToString().c_str());
    return 1;
  }
  core::CamalEnsemble ensemble = std::move(ensemble_result).value();

  // Step 2: CamAL predictions on the (unlabeled) training houses become
  // soft per-timestamp labels.
  core::CamalLocalizer localizer(&ensemble);
  core::LocalizationResult soft = localizer.Localize(train.inputs);
  double soft_on = 0.0;
  for (int64_t i = 0; i < soft.status.numel(); ++i) {
    soft_on += soft.status.at(i);
  }
  std::printf("Generated soft labels for %lld windows (%.1f%% timestamps "
              "marked ON).\n",
              static_cast<long long>(train.size()),
              100.0 * soft_on / static_cast<double>(soft.status.numel()));

  // Step 3: train TPNILM on (a) the soft labels and (b) the true strong
  // labels, then compare on held-out houses.
  baselines::BaselineScale scale;
  scale.width = 0.25;
  eval::TrainConfig tc;
  tc.max_epochs = 8;

  Rng m1(7);
  auto soft_model =
      baselines::MakeBaseline(baselines::BaselineKind::kTpnilm, scale, &m1);
  eval::TrainWithSoftTargets(soft_model.get(), train, soft.status, valid, tc);
  const eval::LocalizationScores soft_scores = eval::ScoreLocalization(
      eval::ThresholdStatus(
          eval::PredictFrameProbabilities(soft_model.get(), test)),
      test);

  Rng m2(7);
  auto strong_model =
      baselines::MakeBaseline(baselines::BaselineKind::kTpnilm, scale, &m2);
  eval::TrainStrongModel(strong_model.get(), train, valid, tc);
  const eval::LocalizationScores strong_scores = eval::ScoreLocalization(
      eval::ThresholdStatus(
          eval::PredictFrameProbabilities(strong_model.get(), test)),
      test);

  std::printf("\nTPNILM test F1:\n");
  std::printf("  trained on CamAL soft labels (0 submeters): %.3f\n",
              soft_scores.f1);
  std::printf("  trained on true strong labels (submeters) : %.3f\n",
              strong_scores.f1);
  std::printf("\nThe paper's RQ5 claim: the soft-label model stays close to\n"
              "the fully supervised one — CamAL predictions can bootstrap\n"
              "strongly supervised NILM where no submeter data exists.\n");
  return 0;
}
