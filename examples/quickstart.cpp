// Quickstart: simulate a small cohort, train CamAL for dishwasher
// localization with weak labels only, and visualize both outputs of Fig. 2:
// appliance detection (Problem 1) and per-timestamp localization
// (Problem 2) on a held-out window.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "data/balance.h"
#include "data/split.h"
#include "eval/experiment.h"
#include "simulate/profiles.h"

namespace {

// Renders a float series as a 3-level ASCII sparkline.
std::string Sparkline(const float* values, int64_t n, float max_value) {
  std::string out;
  for (int64_t i = 0; i < n; ++i) {
    const float v = values[i] / max_value;
    out += v > 0.66f ? '#' : v > 0.33f ? '+' : v > 0.05f ? '.' : ' ';
  }
  return out;
}

}  // namespace

int main() {
  using namespace camal;
  std::printf("CamAL quickstart: weakly supervised dishwasher localization\n");
  std::printf("-----------------------------------------------------------\n");

  // 1) Simulate a REFIT-like cohort (stand-in for the real dataset).
  const auto profile = simulate::RefitProfile();
  auto houses = simulate::SimulateDataset(profile, /*scale=*/0.3, /*seed=*/1);
  std::printf("Simulated %zu households at %.0f-second sampling.\n",
              houses.size(), profile.interval_seconds);

  // 2) Preprocess: house-level split, tumbling windows, weak labels.
  const data::ApplianceSpec spec =
      simulate::SpecFor(simulate::ApplianceType::kDishwasher);
  Rng rng(2);
  auto split = data::SplitHouses(houses, 1, 2, &rng).value();
  data::BuildOptions opt;
  opt.window_length = 128;
  auto train = data::BuildWindowDataset(split.train, spec, opt).value();
  auto valid = data::BuildWindowDataset(split.valid, spec, opt).value();
  auto test = data::BuildWindowDataset(split.test, spec, opt).value();
  train = data::BalanceByWeakLabel(train, &rng);
  std::printf("Windows: train=%lld (balanced), valid=%lld, test=%lld; each "
              "training window carries ONE weak label.\n",
              static_cast<long long>(train.size()),
              static_cast<long long>(valid.size()),
              static_cast<long long>(test.size()));

  // 3) Train the CamAL ensemble (Algorithm 1) on weak labels only.
  core::EnsembleConfig config;
  config.kernel_sizes = {5, 9, 15};
  config.trials_per_kernel = 1;
  config.ensemble_size = 3;
  config.base_filters = 16;
  config.train.max_epochs = 8;
  auto ensemble_result = core::CamalEnsemble::Train(train, valid, config, 3);
  if (!ensemble_result.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 ensemble_result.status().ToString().c_str());
    return 1;
  }
  core::CamalEnsemble ensemble = std::move(ensemble_result).value();
  std::printf("Trained an ensemble of %zu ResNets (%lld parameters).\n",
              ensemble.members().size(),
              static_cast<long long>(ensemble.NumParameters()));

  // 4) Localize on the test windows and score.
  core::CamalLocalizer localizer(&ensemble);
  core::LocalizationResult result = localizer.Localize(test.inputs);
  const eval::LocalizationScores scores =
      eval::ScoreLocalization(result.status, test);
  std::printf("\nTest localization: F1=%.3f Pr=%.3f Rc=%.3f | energy: "
              "MAE=%.1fW MR=%.3f\n",
              scores.f1, scores.precision, scores.recall, scores.mae,
              scores.matching_ratio);

  // 5) Show one detected window: Problem 1 output and Problem 2 output.
  for (int64_t i = 0; i < test.size(); ++i) {
    if (test.weak_labels[static_cast<size_t>(i)] == 1 &&
        result.probabilities.at(i) > 0.5f) {
      std::printf("\nWindow %lld — Problem 1 (detection): P(dishwasher) = "
                  "%.2f -> PRESENT\n",
                  static_cast<long long>(i), result.probabilities.at(i));
      std::vector<float> agg(static_cast<size_t>(test.window_length));
      float max_agg = 1e-3f;
      for (int64_t t = 0; t < test.window_length; ++t) {
        agg[static_cast<size_t>(t)] = test.inputs.at3(i, 0, t);
        max_agg = std::max(max_agg, agg[static_cast<size_t>(t)]);
      }
      std::printf("aggregate  |%s|\n",
                  Sparkline(agg.data(), test.window_length, max_agg).c_str());
      std::printf("truth      |%s|\n",
                  Sparkline(test.status.data() + i * test.window_length,
                            test.window_length, 1.0f)
                      .c_str());
      std::printf("CamAL s(t) |%s|   <- Problem 2 (localization)\n",
                  Sparkline(result.status.data() + i * test.window_length,
                            test.window_length, 1.0f)
                      .c_str());
      break;
    }
  }
  std::printf("\nDone. See bench/ for the full paper reproduction.\n");
  return 0;
}
