// Possession-only pipeline (§V-H, RQ4): train CamAL with literally ONE
// label per household — "does this house own an electric vehicle?" — and
// localize EV charging sessions on held-out, submetered houses.
//
// This is the regime electricity suppliers actually face: the EDF-Weak
// style training cohort has aggregate meters plus a questionnaire bit, and
// no appliance submeter anywhere.

#include <cstdio>

#include "data/balance.h"
#include "eval/experiment.h"
#include "simulate/profiles.h"

int main() {
  using namespace camal;
  std::printf("Possession-only training (one label per household)\n");
  std::printf("---------------------------------------------------\n");

  // Training cohort: EDF-Weak style — aggregate + EV ownership bit only.
  auto weak_houses =
      simulate::SimulateDataset(simulate::EdfWeakProfile(), 0.05, 11);
  int owners = 0;
  for (const auto& h : weak_houses) owners += h.Owns("electric_vehicle");
  std::printf("Survey cohort: %zu households, %d EV owners, zero submeters.\n",
              weak_houses.size(), owners);

  // Test cohort: EDF-EV style — submetered EV chargers (ground truth).
  auto ev_houses =
      simulate::SimulateDataset(simulate::EdfEvProfile(), 0.2, 12);
  std::printf("Evaluation cohort: %zu submetered households.\n",
              ev_houses.size());

  const data::ApplianceSpec spec =
      simulate::SpecFor(simulate::ApplianceType::kElectricVehicle);
  constexpr int64_t kWindow = 96;  // 2 days at 30-minute sampling

  // Possession pipeline: slice each survey household into tumbling windows,
  // replicate the ownership bit onto every window, balance classes.
  data::BuildOptions popt;
  popt.window_length = kWindow;
  popt.possession_labels = true;
  auto weak_windows =
      data::BuildWindowDataset(weak_houses, spec, popt).value();
  Rng rng(13);
  data::WindowDataset balanced = data::BalanceByWeakLabel(weak_windows, &rng);
  std::vector<int64_t> train_idx, valid_idx;
  for (int64_t i = 0; i < balanced.size(); ++i) {
    (i % 5 == 0 ? valid_idx : train_idx).push_back(i);
  }
  std::printf("Possession windows: %lld train / %lld valid (label = the "
              "household ownership bit).\n",
              static_cast<long long>(train_idx.size()),
              static_cast<long long>(valid_idx.size()));

  data::BuildOptions topt;
  topt.window_length = kWindow;
  auto test = data::BuildWindowDataset(ev_houses, spec, topt).value();

  core::EnsembleConfig config;
  config.kernel_sizes = {5, 9, 15};
  config.trials_per_kernel = 1;
  config.ensemble_size = 3;
  config.base_filters = 16;
  config.train.max_epochs = 8;
  auto run = eval::RunCamalExperiment(balanced.Subset(train_idx),
                                      balanced.Subset(valid_idx), test,
                                      config, core::LocalizerOptions{}, 13);
  if (!run.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  const auto& r = run.value();
  std::printf("\nResults on submetered ground truth:\n");
  std::printf("  detection balanced accuracy : %.3f\n",
              r.detection_balanced_accuracy);
  std::printf("  localization F1             : %.3f (Pr %.3f / Rc %.3f)\n",
              r.scores.f1, r.scores.precision, r.scores.recall);
  std::printf("  energy MAE / MR             : %.1f W / %.3f\n", r.scores.mae,
              r.scores.matching_ratio);
  std::printf("  labels used for training    : %lld (vs %lld per-timestamp "
              "labels a NILM method would need)\n",
              static_cast<long long>(r.labels_used),
              static_cast<long long>(r.labels_used * kWindow));
  return 0;
}
