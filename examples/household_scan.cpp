// Household scan (DeviceScope-style demo [41]): train one CamAL model per
// appliance, register them all with the asynchronous serving front-end
// (serve::Service), and scan a cohort of household recordings through it —
// every (house, appliance) pair is one ScanRequest, admitted through the
// bounded queue and served by the worker pool concurrently. The report
// says, per house and appliance, whether it was used, when, and how much
// power it drew — from the aggregate signal only.

#include <algorithm>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel_for.h"
#include "data/balance.h"
#include "data/column_store.h"
#include "data/split.h"
#include "eval/experiment.h"
#include "serve/service.h"
#include "simulate/profiles.h"

int main() {
  using namespace camal;
  std::printf("Household scan: which appliances ran, and when?\n");
  std::printf("------------------------------------------------\n");

  const auto profile = simulate::RefitProfile();
  auto houses = simulate::SimulateDataset(profile, 0.3, 3);
  Rng rng(4);
  const int64_t n_test =
      std::min<int64_t>(3, static_cast<int64_t>(houses.size()) - 2);
  auto split = data::SplitHouses(houses, 1, n_test, &rng).value();

  constexpr int64_t kWindow = 128;

  // Train one ensemble per appliance up front; the service borrows them,
  // so they must outlive it.
  struct TrainedAppliance {
    data::ApplianceSpec spec;
    core::CamalEnsemble ensemble;
  };
  std::vector<TrainedAppliance> trained;
  for (simulate::ApplianceType type :
       {simulate::ApplianceType::kDishwasher, simulate::ApplianceType::kKettle,
        simulate::ApplianceType::kMicrowave,
        simulate::ApplianceType::kWashingMachine}) {
    const data::ApplianceSpec spec = simulate::SpecFor(type);
    data::BuildOptions opt;
    opt.window_length = kWindow;
    auto train_r = data::BuildWindowDataset(split.train, spec, opt);
    auto valid_r = data::BuildWindowDataset(split.valid, spec, opt);
    if (!train_r.ok() || !valid_r.ok()) {
      std::printf("%-16s: no training data in this cohort\n",
                  spec.name.c_str());
      continue;
    }
    if (!data::IsBalanceable(train_r.value())) {
      std::printf("%-16s: weak labels are single-class; skipping\n",
                  spec.name.c_str());
      continue;
    }
    data::WindowDataset train = data::BalanceByWeakLabel(train_r.value(), &rng);

    core::EnsembleConfig config;
    config.kernel_sizes = {5, 9, 15};
    config.trials_per_kernel = 1;
    config.ensemble_size = 3;
    config.base_filters = 16;
    config.train.max_epochs = 6;
    auto ensemble_result =
        core::CamalEnsemble::Train(train, valid_r.value(), config, 5);
    if (!ensemble_result.ok()) {
      std::printf("%-16s: training failed\n", spec.name.c_str());
      continue;
    }
    trained.push_back({spec, std::move(ensemble_result).value()});
  }
  if (trained.empty()) {
    std::printf("no appliance could be trained on this cohort\n");
    return 0;
  }

  // One service for every appliance: each worker owns a BatchRunner per
  // appliance over its own ensemble replica, and requests are admitted as
  // they arrive instead of whole-cohort batches.
  serve::Service service;  // workers = CAMAL_THREADS, queue capacity 256
  for (TrainedAppliance& appliance : trained) {
    serve::BatchRunnerOptions runner;
    runner.stream.window_length = kWindow;
    runner.stream.stride = kWindow / 2;
    runner.stream.batch_size = 32;
    runner.appliance_avg_power_w = appliance.spec.avg_power_w;
    // Registration borrows the ensemble; the service clones per-worker
    // replicas at Start.
    Status st = service.RegisterAppliance(appliance.spec.name,
                                          &appliance.ensemble, runner);
    if (!st.ok()) {
      std::fprintf(stderr, "register %s: %s\n", appliance.spec.name.c_str(),
                   st.ToString().c_str());
      return 1;
    }
  }
  Status started = service.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("Scanning %zu houses x %zu appliances across %d workers "
              "(CAMAL_THREADS=%d).\n",
              split.test.size(), trained.size(), service.workers(),
              NumThreads());

  // Submit every (house, appliance) pair asynchronously, then harvest.
  struct Pending {
    size_t appliance;
    size_t house;
    std::future<Result<serve::ScanResult>> future;
  };
  std::vector<Pending> pending;
  for (size_t a = 0; a < trained.size(); ++a) {
    for (size_t h = 0; h < split.test.size(); ++h) {
      serve::ScanRequest request;
      request.household_id = "house_" + std::to_string(h);
      request.appliance = trained[a].spec.name;
      request.series = data::SeriesView(split.test[h].aggregate);
      pending.push_back({a, h, service.Submit(std::move(request))});
    }
  }

  size_t printed_appliance = trained.size();
  for (Pending& p : pending) {
    if (p.appliance != printed_appliance) {
      std::printf("%-16s:\n", trained[p.appliance].spec.name.c_str());
      printed_appliance = p.appliance;
    }
    Result<serve::ScanResult> result = p.future.get();
    if (!result.ok()) {
      std::printf("  house %-3d: request failed: %s\n",
                  split.test[p.house].house_id,
                  result.status().ToString().c_str());
      continue;
    }
    const serve::ScanResult& scan = result.value();
    const data::HouseRecord& house = split.test[p.house];
    int64_t on_samples = 0;
    double energy_wh = 0.0;
    for (int64_t t = 0; t < scan.status.numel(); ++t) {
      on_samples += scan.status.at(t) > 0.5f ? 1 : 0;
      energy_wh += scan.power.at(t) * profile.interval_seconds / 3600.0;
    }
    const double hours = static_cast<double>(on_samples) *
                         profile.interval_seconds / 3600.0;
    const bool owned = house.Owns(trained[p.appliance].spec.name);
    std::printf("  house %-3d: ~%.1f h of use, ~%.1f kWh estimated "
                "(%lld windows, %.0f ms latency; actually owns it: %s)\n",
                house.house_id, hours, energy_wh / 1000.0,
                static_cast<long long>(scan.windows),
                scan.latency_seconds * 1e3, owned ? "yes" : "no");
  }
  const serve::ServiceStats stats = service.stats();
  std::printf("service: %lld accepted, %lld completed, %lld rejected "
              "(%lld invalid, %lld backpressure)\n",
              static_cast<long long>(stats.accepted),
              static_cast<long long>(stats.completed),
              static_cast<long long>(stats.rejected_total()),
              static_cast<long long>(stats.rejected_invalid),
              static_cast<long long>(stats.rejected_backpressure));

  // Streaming epilogue: replay one household through a serve::Session in
  // live-meter-sized chunks. The incremental path rescans only the
  // windows each new tail touches, yet the final result must be
  // bitwise-identical to the one-shot scan of the same series — the
  // streaming path and the batch path are one pipeline.
  {
    const data::HouseRecord& house = split.test.front();
    const std::string& name = trained.front().spec.name;
    Result<serve::ScanResult> oneshot =
        service.Submit(name, house.aggregate).get();
    if (!oneshot.ok()) {
      std::fprintf(stderr, "one-shot scan: %s\n",
                   oneshot.status().ToString().c_str());
      return 1;
    }
    serve::SessionOptions session_opt;
    session_opt.household_id = "stream_demo";
    auto session_result = service.CreateSession(name, session_opt);
    if (!session_result.ok()) {
      std::fprintf(stderr, "create session: %s\n",
                   session_result.status().ToString().c_str());
      return 1;
    }
    std::shared_ptr<serve::Session> session = session_result.value();
    const auto n = static_cast<int64_t>(house.aggregate.size());
    const int64_t chunk = std::max<int64_t>(int64_t{1}, n / 4);
    int64_t appends = 0;
    Result<serve::ScanResult> streamed(Status::Internal("no append ran"));
    for (int64_t begin = 0; begin < n; begin += chunk) {
      streamed = session
                     ->AppendReadings(house.aggregate.data() + begin,
                                      std::min(chunk, n - begin))
                     .get();
      if (!streamed.ok()) {
        std::fprintf(stderr, "append: %s\n",
                     streamed.status().ToString().c_str());
        return 1;
      }
      ++appends;
    }
    bool identical =
        streamed.value().detection.numel() == oneshot.value().detection.numel();
    for (int64_t t = 0; identical && t < oneshot.value().detection.numel();
         ++t) {
      identical =
          streamed.value().detection.at(t) ==
              oneshot.value().detection.at(t) &&
          streamed.value().status.at(t) == oneshot.value().status.at(t) &&
          streamed.value().power.at(t) == oneshot.value().power.at(t);
    }
    std::printf("streaming session (%s, house %d): %lld appends, %lld "
                "readings, final result bitwise-identical to the one-shot "
                "scan: %s\n",
                name.c_str(), house.house_id,
                static_cast<long long>(appends),
                static_cast<long long>(session->readings()),
                identical ? "yes" : "NO");
    if (!identical) return 1;
    if (!session->Close().ok()) return 1;

    // Zero-copy store epilogue: persist the same household as a mapped
    // column store and scan it straight off the file. The request borrows
    // a SeriesView into the mapping — no parse, no copy — and must still
    // produce bitwise the same result as the in-memory one-shot scan.
    const std::string store_path = "/tmp/household_scan_house.cstore";
    Status wrote = data::WriteColumnStore(house, store_path);
    if (!wrote.ok()) {
      std::fprintf(stderr, "write store: %s\n", wrote.ToString().c_str());
      return 1;
    }
    auto store_result = data::ColumnStore::Open(store_path);
    if (!store_result.ok()) {
      std::fprintf(stderr, "open store: %s\n",
                   store_result.status().ToString().c_str());
      return 1;
    }
    const data::ColumnStore& store = store_result.value();
    serve::ScanRequest request;
    request.household_id = "store_demo";
    request.appliance = name;
    request.series = store.aggregate();
    Result<serve::ScanResult> mapped = service.Submit(std::move(request)).get();
    if (!mapped.ok()) {
      std::fprintf(stderr, "mapped scan: %s\n",
                   mapped.status().ToString().c_str());
      return 1;
    }
    bool store_identical =
        mapped.value().detection.numel() == oneshot.value().detection.numel();
    for (int64_t t = 0;
         store_identical && t < oneshot.value().detection.numel(); ++t) {
      store_identical =
          mapped.value().detection.at(t) == oneshot.value().detection.at(t) &&
          mapped.value().status.at(t) == oneshot.value().status.at(t) &&
          mapped.value().power.at(t) == oneshot.value().power.at(t);
    }
    std::printf("mapped store scan (%lld samples, %lld bytes on disk, "
                "%lld chunks): bitwise-identical to the in-memory scan: %s\n",
                static_cast<long long>(store.num_samples()),
                static_cast<long long>(store.file_bytes()),
                static_cast<long long>(store.num_chunks()),
                store_identical ? "yes" : "NO");
    std::remove(store_path.c_str());
    if (!store_identical) return 1;

    // Crash-and-restore epilogue: stream the first half of the same
    // household, checkpoint the live session, then "kill" the server and
    // boot a fresh Service that restores the snapshot and streams the
    // rest. The final result must still be bitwise-identical to the
    // one-shot scan — a crash in the middle of a stream loses nothing.
    const std::string ckpt_dir = "/tmp/household_scan_ckpt";
    serve::SessionOptions crash_opt;
    crash_opt.household_id = "crash_demo";
    auto crash_result = service.CreateSession(name, crash_opt);
    if (!crash_result.ok()) {
      std::fprintf(stderr, "create crash session: %s\n",
                   crash_result.status().ToString().c_str());
      return 1;
    }
    const int64_t half = n / 2;
    Result<serve::ScanResult> first_half =
        crash_result.value()->AppendReadings(house.aggregate.data(), half)
            .get();
    if (!first_half.ok()) {
      std::fprintf(stderr, "first-half append: %s\n",
                   first_half.status().ToString().c_str());
      return 1;
    }
    Status checkpointed = service.CheckpointSessions(ckpt_dir);
    if (!checkpointed.ok()) {
      std::fprintf(stderr, "checkpoint: %s\n",
                   checkpointed.ToString().c_str());
      return 1;
    }
    // The "restarted server": a brand-new Service over the same trained
    // ensemble revives the session from the snapshot alone.
    serve::Service revived;
    serve::BatchRunnerOptions crash_runner;
    crash_runner.stream.window_length = kWindow;
    crash_runner.stream.stride = kWindow / 2;
    crash_runner.stream.batch_size = 32;
    crash_runner.appliance_avg_power_w = trained.front().spec.avg_power_w;
    if (!revived.RegisterAppliance(name, &trained.front().ensemble,
                                   crash_runner)
             .ok() ||
        !revived.Start().ok()) {
      std::fprintf(stderr, "revived service failed to start\n");
      return 1;
    }
    Result<int64_t> restored = revived.RestoreSessions(ckpt_dir);
    if (!restored.ok() || restored.value() != 1) {
      std::fprintf(stderr, "restore: %s\n",
                   restored.ok() ? "wrong session count"
                                 : restored.status().ToString().c_str());
      return 1;
    }
    auto revived_session = revived.GetSession("crash_demo");
    if (!revived_session.ok()) {
      std::fprintf(stderr, "revived session lookup: %s\n",
                   revived_session.status().ToString().c_str());
      return 1;
    }
    Result<serve::ScanResult> resumed =
        revived_session.value()
            ->AppendReadings(house.aggregate.data() + half, n - half)
            .get();
    if (!resumed.ok()) {
      std::fprintf(stderr, "post-restore append: %s\n",
                   resumed.status().ToString().c_str());
      return 1;
    }
    bool crash_identical =
        resumed.value().detection.numel() == oneshot.value().detection.numel();
    for (int64_t t = 0;
         crash_identical && t < oneshot.value().detection.numel(); ++t) {
      crash_identical =
          resumed.value().detection.at(t) ==
              oneshot.value().detection.at(t) &&
          resumed.value().status.at(t) == oneshot.value().status.at(t) &&
          resumed.value().power.at(t) == oneshot.value().power.at(t);
    }
    std::printf("crash-and-restore (%lld of %lld readings checkpointed): "
                "resumed stream bitwise-identical to the one-shot scan: %s\n",
                static_cast<long long>(half), static_cast<long long>(n),
                crash_identical ? "yes" : "NO");
    revived.Shutdown();
    std::remove(serve::Service::CheckpointFile(ckpt_dir).c_str());
    if (!crash_identical) return 1;
  }
  service.Shutdown();
  return 0;
}
