// Household scan (DeviceScope-style demo [41]): train one CamAL model per
// appliance and scan a single household's recording through the batched
// serving runtime (overlapping windows, majority-vote stitching),
// reporting for each appliance whether it was used, when, and how much
// power it drew — from the aggregate signal only.

#include <cstdio>
#include <string>

#include "data/balance.h"
#include "data/split.h"
#include "eval/experiment.h"
#include "serve/batch_runner.h"
#include "simulate/profiles.h"

int main() {
  using namespace camal;
  std::printf("Household scan: which appliances ran, and when?\n");
  std::printf("------------------------------------------------\n");

  const auto profile = simulate::RefitProfile();
  auto houses = simulate::SimulateDataset(profile, 0.3, 3);
  Rng rng(4);
  auto split = data::SplitHouses(houses, 1, 1, &rng).value();
  const data::HouseRecord& target_house = split.test.front();
  std::printf("Scanning house %d (%.1f days of data).\n",
              target_house.house_id,
              static_cast<double>(target_house.aggregate.size()) *
                  profile.interval_seconds / 86400.0);

  constexpr int64_t kWindow = 128;
  for (simulate::ApplianceType type :
       {simulate::ApplianceType::kDishwasher, simulate::ApplianceType::kKettle,
        simulate::ApplianceType::kMicrowave,
        simulate::ApplianceType::kWashingMachine}) {
    const data::ApplianceSpec spec = simulate::SpecFor(type);
    data::BuildOptions opt;
    opt.window_length = kWindow;
    auto train_r = data::BuildWindowDataset(split.train, spec, opt);
    auto valid_r = data::BuildWindowDataset(split.valid, spec, opt);
    if (!train_r.ok() || !valid_r.ok()) {
      std::printf("%-16s: no training data in this cohort\n", spec.name.c_str());
      continue;
    }
    data::WindowDataset train = data::BalanceByWeakLabel(train_r.value(), &rng);
    if (!data::IsBalanceable(train_r.value())) {
      std::printf("%-16s: weak labels are single-class; skipping\n",
                  spec.name.c_str());
      continue;
    }

    core::EnsembleConfig config;
    config.kernel_sizes = {5, 9, 15};
    config.trials_per_kernel = 1;
    config.ensemble_size = 3;
    config.base_filters = 16;
    config.train.max_epochs = 6;
    auto ensemble_result =
        core::CamalEnsemble::Train(train, valid_r.value(), config, 5);
    if (!ensemble_result.ok()) {
      std::printf("%-16s: training failed\n", spec.name.c_str());
      continue;
    }
    core::CamalEnsemble ensemble = std::move(ensemble_result).value();

    // Serve the target house through the batched runtime: overlapping
    // windows, all ensemble members in one pass per batch, per-timestamp
    // majority vote, §IV-C power estimation.
    serve::BatchRunnerOptions serve_opt;
    serve_opt.stream.window_length = kWindow;
    serve_opt.stream.stride = kWindow / 2;
    serve_opt.stream.batch_size = 32;
    serve_opt.appliance_avg_power_w = spec.avg_power_w;
    serve::BatchRunner runner(&ensemble, serve_opt);
    serve::ScanResult scan = runner.Scan(target_house.aggregate);

    int64_t on_samples = 0;
    double energy_wh = 0.0;
    for (int64_t t = 0; t < scan.status.numel(); ++t) {
      on_samples += scan.status.at(t) > 0.5f ? 1 : 0;
      energy_wh += scan.power.at(t) * profile.interval_seconds / 3600.0;
    }
    const double hours = static_cast<double>(on_samples) *
                         profile.interval_seconds / 3600.0;
    const bool owned = target_house.Owns(spec.name);
    std::printf("%-16s: ~%.1f h of use, ~%.1f kWh estimated (%lld windows "
                "at %.0f win/s; house actually owns it: %s)\n",
                spec.name.c_str(), hours, energy_wh / 1000.0,
                static_cast<long long>(scan.windows),
                scan.WindowsPerSecond(), owned ? "yes" : "no");
  }
  return 0;
}
