// Household scan (DeviceScope-style demo [41]): train one CamAL model per
// appliance and scan a whole cohort of household recordings through the
// sharded serving runtime (overlapping windows, majority-vote stitching,
// one worker shard per household), reporting for each house and appliance
// whether it was used, when, and how much power it drew — from the
// aggregate signal only.

#include <cstdio>
#include <string>

#include "common/parallel_for.h"
#include "data/balance.h"
#include "data/split.h"
#include "eval/experiment.h"
#include "serve/sharded_scanner.h"
#include "simulate/profiles.h"

int main() {
  using namespace camal;
  std::printf("Household scan: which appliances ran, and when?\n");
  std::printf("------------------------------------------------\n");

  const auto profile = simulate::RefitProfile();
  auto houses = simulate::SimulateDataset(profile, 0.3, 3);
  Rng rng(4);
  const int64_t n_test =
      std::min<int64_t>(3, static_cast<int64_t>(houses.size()) - 2);
  auto split = data::SplitHouses(houses, 1, n_test, &rng).value();
  std::printf("Scanning %zu houses across %d worker shards "
              "(CAMAL_THREADS=%d).\n",
              split.test.size(),
              PlanOuterShards(static_cast<int64_t>(split.test.size()), 0)
                  .shards,
              NumThreads());

  std::vector<const std::vector<float>*> cohort;
  for (const data::HouseRecord& house : split.test) {
    cohort.push_back(&house.aggregate);
  }

  constexpr int64_t kWindow = 128;
  for (simulate::ApplianceType type :
       {simulate::ApplianceType::kDishwasher, simulate::ApplianceType::kKettle,
        simulate::ApplianceType::kMicrowave,
        simulate::ApplianceType::kWashingMachine}) {
    const data::ApplianceSpec spec = simulate::SpecFor(type);
    data::BuildOptions opt;
    opt.window_length = kWindow;
    auto train_r = data::BuildWindowDataset(split.train, spec, opt);
    auto valid_r = data::BuildWindowDataset(split.valid, spec, opt);
    if (!train_r.ok() || !valid_r.ok()) {
      std::printf("%-16s: no training data in this cohort\n",
                  spec.name.c_str());
      continue;
    }
    data::WindowDataset train = data::BalanceByWeakLabel(train_r.value(), &rng);
    if (!data::IsBalanceable(train_r.value())) {
      std::printf("%-16s: weak labels are single-class; skipping\n",
                  spec.name.c_str());
      continue;
    }

    core::EnsembleConfig config;
    config.kernel_sizes = {5, 9, 15};
    config.trials_per_kernel = 1;
    config.ensemble_size = 3;
    config.base_filters = 16;
    config.train.max_epochs = 6;
    auto ensemble_result =
        core::CamalEnsemble::Train(train, valid_r.value(), config, 5);
    if (!ensemble_result.ok()) {
      std::printf("%-16s: training failed\n", spec.name.c_str());
      continue;
    }
    core::CamalEnsemble ensemble = std::move(ensemble_result).value();

    // Serve every test house through the sharded runtime: households are
    // partitioned across worker shards (one BatchRunner + ensemble replica
    // each), and inside each shard batches of overlapping windows run all
    // ensemble members in one pass, with per-timestamp majority vote and
    // §IV-C power estimation.
    serve::ShardedScannerOptions serve_opt;
    serve_opt.runner.stream.window_length = kWindow;
    serve_opt.runner.stream.stride = kWindow / 2;
    serve_opt.runner.stream.batch_size = 32;
    serve_opt.runner.appliance_avg_power_w = spec.avg_power_w;
    serve::ShardedScanner scanner(&ensemble, serve_opt);
    std::vector<serve::ScanResult> scans = scanner.ScanAll(cohort);

    std::printf("%-16s:\n", spec.name.c_str());
    for (size_t house_i = 0; house_i < scans.size(); ++house_i) {
      const serve::ScanResult& scan = scans[house_i];
      const data::HouseRecord& house = split.test[house_i];
      int64_t on_samples = 0;
      double energy_wh = 0.0;
      for (int64_t t = 0; t < scan.status.numel(); ++t) {
        on_samples += scan.status.at(t) > 0.5f ? 1 : 0;
        energy_wh += scan.power.at(t) * profile.interval_seconds / 3600.0;
      }
      const double hours = static_cast<double>(on_samples) *
                           profile.interval_seconds / 3600.0;
      const bool owned = house.Owns(spec.name);
      std::printf("  house %-3d: ~%.1f h of use, ~%.1f kWh estimated "
                  "(%lld windows; house actually owns it: %s)\n",
                  house.house_id, hours, energy_wh / 1000.0,
                  static_cast<long long>(scan.windows), owned ? "yes" : "no");
    }
  }
  return 0;
}
