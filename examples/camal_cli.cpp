// camal_cli — train, persist, and apply CamAL models from the command line
// on CSV smart-meter data (the workflow an electricity supplier would run).
//
// Commands:
//   camal_cli simulate <dir> [--profile NAME] [--scale S] [--seed N]
//       Simulate a cohort and export it as house_*.csv files.
//   camal_cli train <data_dir> <model_dir> --appliance NAME
//       [--window L] [--epochs E] [--members N] [--filters F] [--seed N]
//       Train a CamAL ensemble on weak labels derived from the submeter
//       columns and save it.
//   camal_cli localize <model_dir> <house.csv> --appliance NAME [--window L]
//       Load a saved ensemble and print per-window detections and the
//       localized activation timeline for one household.
//   camal_cli serve <model_dir> <data_dir> --appliance NAME [--window L]
//       [--workers N] [--queue N] [--avg-power W] [--store 1]
//       Load a saved ensemble, start the asynchronous serve::Service, scan
//       every house_*.csv through the request queue, and print
//       per-request latency. With --store 1, <data_dir> holds
//       house_*.cstore files instead and every scan runs straight off the
//       memory mapping (zero-copy).
//   camal_cli convert <src> <dst> [--house-id N] [--chunk N] [--to-csv 1]
//       Convert between CSV households and binary column stores. <src>
//       may be one file or a directory of house_*.csv / house_*.cstore
//       files; the direction is inferred from the .cstore extension or
//       forced with --to-csv 1.
//   camal_cli loadgen <model_dir> <data_dir> --appliance NAME
//       [--rps 25,50,100,200] [--seconds 1.0] [--process poisson]
//       [--deadline S] [--priority normal] [--window L] [--workers N]
//       [--coalesce 8] [--store 1]
//       Open-loop load sweep: drive the serving stack at each offered
//       rate on its intended Poisson (or fixed) schedule without waiting
//       for completions, and report p50/p95/p99 latency vs load plus the
//       throughput knee.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel_for.h"
#include "data/balance.h"
#include "data/column_store.h"
#include "data/csv_loader.h"
#include "data/split.h"
#include "core/localizer.h"
#include "core/model_io.h"
#include "loadgen/sweep.h"
#include "serve/service.h"
#include "simulate/profiles.h"

namespace {

using namespace camal;

// Minimal flag parser: positional args plus --key value pairs.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  std::string Flag(const std::string& key, const std::string& fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  double FlagDouble(const std::string& key, double fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atof(it->second.c_str());
  }
  int64_t FlagInt(const std::string& key, int64_t fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atoll(it->second.c_str());
  }
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0 && i + 1 < argc) {
      args.flags[argv[i] + 2] = argv[i + 1];
      ++i;
    } else {
      args.positional.push_back(argv[i]);
    }
  }
  return args;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

simulate::DatasetProfile ProfileByName(const std::string& name) {
  if (name == "ukdale") return simulate::UkdaleProfile();
  if (name == "ideal") return simulate::IdealProfile();
  if (name == "edf_ev") return simulate::EdfEvProfile();
  if (name == "edf_weak") return simulate::EdfWeakProfile();
  return simulate::RefitProfile();
}

int CmdSimulate(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "usage: camal_cli simulate <dir> [--profile refit]"
                         " [--scale 0.3] [--seed 1]\n");
    return 1;
  }
  const auto profile = ProfileByName(args.Flag("profile", "refit"));
  auto houses = simulate::SimulateDataset(
      profile, args.FlagDouble("scale", 0.3),
      static_cast<uint64_t>(args.FlagInt("seed", 1)));
  (void)std::system(("mkdir -p " + args.positional[0]).c_str());
  for (const auto& house : houses) {
    char name[64];
    std::snprintf(name, sizeof(name), "/house_%03d.csv", house.house_id);
    Status st = data::WriteHouseCsv(house, args.positional[0] + name);
    if (!st.ok()) return Fail(st);
  }
  std::printf("wrote %zu houses (%s profile) to %s\n", houses.size(),
              profile.name.c_str(), args.positional[0].c_str());
  return 0;
}

int CmdTrain(const Args& args) {
  if (args.positional.size() < 2 || args.Flag("appliance", "").empty()) {
    std::fprintf(stderr,
                 "usage: camal_cli train <data_dir> <model_dir> --appliance "
                 "NAME [--window 128] [--epochs 8] [--members 3] "
                 "[--filters 16] [--seed 7]\n");
    return 1;
  }
  auto houses_result = data::LoadDatasetDir(args.positional[0]);
  if (!houses_result.ok()) return Fail(houses_result.status());
  auto houses = std::move(houses_result).value();
  std::printf("loaded %zu houses from %s\n", houses.size(),
              args.positional[0].c_str());

  data::ApplianceSpec spec;
  spec.name = args.Flag("appliance", "");
  // Look the spec up from the built-in Table I; unknown names use generic
  // thresholds.
  spec.on_threshold_w = 300.0f;
  spec.avg_power_w = 800.0f;
  for (auto type : {simulate::ApplianceType::kDishwasher,
                    simulate::ApplianceType::kKettle,
                    simulate::ApplianceType::kMicrowave,
                    simulate::ApplianceType::kWashingMachine,
                    simulate::ApplianceType::kShower,
                    simulate::ApplianceType::kElectricVehicle}) {
    if (simulate::ApplianceName(type) == spec.name) {
      spec = simulate::SpecFor(type);
    }
  }

  const auto seed = static_cast<uint64_t>(args.FlagInt("seed", 7));
  Rng rng(seed);
  const auto n = static_cast<int64_t>(houses.size());
  auto split_result = data::SplitHouses(
      houses, std::max<int64_t>(1, n / 5), 0, &rng);
  if (!split_result.ok()) return Fail(split_result.status());
  data::BuildOptions opt;
  opt.window_length = args.FlagInt("window", 128);
  auto train = data::BuildWindowDataset(split_result.value().train, spec, opt);
  auto valid = data::BuildWindowDataset(split_result.value().valid, spec, opt);
  if (!train.ok()) return Fail(train.status());
  if (!valid.ok()) return Fail(valid.status());
  data::WindowDataset balanced =
      data::BalanceByWeakLabel(train.value(), &rng);
  std::printf("training on %lld balanced windows (%lld weak labels)\n",
              static_cast<long long>(balanced.size()),
              static_cast<long long>(balanced.size()));

  core::EnsembleConfig config;
  config.kernel_sizes = {5, 9, 15};
  config.trials_per_kernel = 1;
  config.ensemble_size = static_cast<int>(args.FlagInt("members", 3));
  config.base_filters = args.FlagInt("filters", 16);
  config.train.max_epochs = static_cast<int>(args.FlagInt("epochs", 8));
  auto ensemble = core::CamalEnsemble::Train(balanced, valid.value(), config,
                                             seed);
  if (!ensemble.ok()) return Fail(ensemble.status());
  Status st = core::SaveEnsemble(ensemble.value(), args.positional[1]);
  if (!st.ok()) return Fail(st);
  std::printf("saved %zu-member ensemble (%lld parameters) to %s\n",
              ensemble.value().members().size(),
              static_cast<long long>(ensemble.value().NumParameters()),
              args.positional[1].c_str());
  return 0;
}

int CmdLocalize(const Args& args) {
  if (args.positional.size() < 2) {
    std::fprintf(stderr, "usage: camal_cli localize <model_dir> <house.csv> "
                         "--appliance NAME [--window 128]\n");
    return 1;
  }
  auto ensemble_result = core::LoadEnsemble(args.positional[0]);
  if (!ensemble_result.ok()) return Fail(ensemble_result.status());
  core::CamalEnsemble ensemble = std::move(ensemble_result).value();
  auto house_result = data::LoadHouseCsv(args.positional[1], 1);
  if (!house_result.ok()) return Fail(house_result.status());
  const data::HouseRecord& house = house_result.value();

  data::ApplianceSpec spec;
  spec.name = args.Flag("appliance", "appliance");
  data::BuildOptions opt;
  opt.window_length = args.FlagInt("window", 128);
  opt.possession_labels = true;  // no submeter needed to localize
  auto windows_result = data::BuildWindowDataset({house}, spec, opt);
  if (!windows_result.ok()) return Fail(windows_result.status());
  const data::WindowDataset& windows = windows_result.value();

  core::CamalLocalizer localizer(&ensemble);
  core::LocalizationResult result = localizer.Localize(windows.inputs);
  int64_t detected = 0, on_samples = 0;
  for (int64_t i = 0; i < windows.size(); ++i) {
    const bool present = result.probabilities.at(i) > 0.5f;
    detected += present;
    int64_t window_on = 0;
    for (int64_t t = 0; t < windows.window_length; ++t) {
      window_on += result.status.at2(i, t) > 0.5f ? 1 : 0;
    }
    on_samples += window_on;
    if (present) {
      std::printf("window %4lld: P(%s)=%.2f, %lld/%lld timestamps ON\n",
                  static_cast<long long>(i), spec.name.c_str(),
                  result.probabilities.at(i),
                  static_cast<long long>(window_on),
                  static_cast<long long>(windows.window_length));
    }
  }
  std::printf("summary: detected in %lld/%lld windows; ~%.1f hours of use\n",
              static_cast<long long>(detected),
              static_cast<long long>(windows.size()),
              static_cast<double>(on_samples) * house.interval_seconds /
                  3600.0);
  return 0;
}

// Lists <prefix>*<suffix> files in \p dir, sorted by name (the order
// LoadDatasetDir and OpenStoreDir assign household indices in).
Result<std::vector<std::string>> ListFiles(const std::string& dir,
                                           const std::string& prefix,
                                           const std::string& suffix) {
  namespace fs = std::filesystem;
  std::error_code ec;
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > prefix.size() + suffix.size() &&
        name.rfind(prefix, 0) == 0 &&
        name.substr(name.size() - suffix.size()) == suffix) {
      files.push_back(entry.path().string());
    }
  }
  if (files.empty()) {
    return Status::NotFound("no " + prefix + "*" + suffix + " files in " +
                            dir);
  }
  std::sort(files.begin(), files.end());
  return files;
}

int64_t FileBytes(const std::string& path) {
  std::error_code ec;
  const auto bytes = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<int64_t>(bytes);
}

int CmdConvert(const Args& args) {
  if (args.positional.size() < 2) {
    std::fprintf(stderr,
                 "usage: camal_cli convert <src> <dst> [--house-id 1] "
                 "[--chunk 262144] [--to-csv 1]\n"
                 "  <src>/<dst> are files, or directories of house_*.csv "
                 "(or house_*.cstore with --to-csv 1)\n");
    return 1;
  }
  const std::string& src = args.positional[0];
  const std::string& dst = args.positional[1];
  data::ColumnStoreWriteOptions options;
  options.chunk_samples = args.FlagInt("chunk", options.chunk_samples);
  const bool to_csv =
      args.FlagInt("to-csv", 0) != 0 ||
      (src.size() > 7 && src.substr(src.size() - 7) == ".cstore");

  std::error_code ec;
  if (!std::filesystem::is_directory(src, ec)) {
    // Single file: csv -> cstore (or the inverse with --to-csv 1).
    Status st = to_csv
                    ? data::ConvertStoreToCsv(src, dst)
                    : data::ConvertCsvToStore(
                          src, dst,
                          static_cast<int>(args.FlagInt("house-id", 1)),
                          options);
    if (!st.ok()) return Fail(st);
    std::printf("converted %s (%lld bytes) -> %s (%lld bytes)\n", src.c_str(),
                static_cast<long long>(FileBytes(src)), dst.c_str(),
                static_cast<long long>(FileBytes(dst)));
    return 0;
  }

  // Directory mode: convert the whole cohort, one file per household.
  (void)std::system(("mkdir -p " + dst).c_str());
  int64_t src_bytes = 0, dst_bytes = 0;
  size_t converted = 0;
  if (to_csv) {
    auto files = ListFiles(src, "house_", ".cstore");
    if (!files.ok()) return Fail(files.status());
    for (const std::string& file : files.value()) {
      // The output name carries the id the store was written with, so a
      // round trip reproduces the original cohort layout.
      auto store = data::ColumnStore::Open(file);
      if (!store.ok()) return Fail(store.status());
      char name[64];
      std::snprintf(name, sizeof(name), "/house_%03d.csv",
                    store.value().house_id());
      Status st = data::WriteHouseCsv(store.value().ToHouseRecord(),
                                      dst + name);
      if (!st.ok()) return Fail(st);
      src_bytes += FileBytes(file);
      dst_bytes += FileBytes(dst + name);
      ++converted;
    }
  } else {
    auto files = ListFiles(src, "house_", ".csv");
    if (!files.ok()) return Fail(files.status());
    // Sequential ids, mirroring LoadDatasetDir: `serve --store` over the
    // converted directory reports the same household ids as `serve` over
    // the CSV directory.
    int next_id = 1;
    for (const std::string& file : files.value()) {
      char name[64];
      std::snprintf(name, sizeof(name), "/house_%03d.cstore", next_id);
      Status st = data::ConvertCsvToStore(file, dst + name, next_id, options);
      if (!st.ok()) return Fail(st);
      src_bytes += FileBytes(file);
      dst_bytes += FileBytes(dst + name);
      ++next_id;
      ++converted;
    }
  }
  std::printf("converted %zu households: %s (%lld bytes) -> %s (%lld "
              "bytes, %.2fx)\n",
              converted, src.c_str(), static_cast<long long>(src_bytes),
              dst.c_str(), static_cast<long long>(dst_bytes),
              dst_bytes > 0 ? static_cast<double>(src_bytes) /
                                  static_cast<double>(dst_bytes)
                            : 0.0);
  return 0;
}

// A serving cohort: (id, SeriesView) pairs whose views borrow from the
// owning `houses` (CSV data plane, parsed into owned vectors) or `stores`
// (mapped column stores, zero-copy) — both live here so the views stay
// valid for as long as the cohort does. Shared by `serve` and `loadgen`.
struct ServingCohort {
  std::vector<data::HouseRecord> houses;
  std::vector<data::ColumnStore> stores;
  std::vector<int> house_ids;
  std::vector<data::SeriesView> views;
};

Result<ServingCohort> LoadServingCohort(const std::string& data_dir,
                                        bool use_store) {
  ServingCohort cohort;
  if (use_store) {
    auto stores_result = data::OpenStoreDir(data_dir);
    if (!stores_result.ok()) return stores_result.status();
    cohort.stores = std::move(stores_result).value();
    for (const data::ColumnStore& store : cohort.stores) {
      cohort.house_ids.push_back(store.house_id());
      cohort.views.push_back(store.aggregate());
    }
  } else {
    auto houses_result = data::LoadDatasetDir(data_dir);
    if (!houses_result.ok()) return houses_result.status();
    cohort.houses = std::move(houses_result).value();
    for (const data::HouseRecord& house : cohort.houses) {
      cohort.house_ids.push_back(house.house_id);
      cohort.views.push_back(data::SeriesView(house.aggregate));
    }
  }
  return cohort;
}

// Table I average power for a known appliance name, overridable with
// --avg-power; unknown names fall back to a generic 800 W.
float ResolveAvgPowerW(const Args& args, const std::string& appliance) {
  float avg_power_w = 800.0f;
  for (auto type : {simulate::ApplianceType::kDishwasher,
                    simulate::ApplianceType::kKettle,
                    simulate::ApplianceType::kMicrowave,
                    simulate::ApplianceType::kWashingMachine,
                    simulate::ApplianceType::kShower,
                    simulate::ApplianceType::kElectricVehicle}) {
    if (simulate::ApplianceName(type) == appliance) {
      avg_power_w = simulate::SpecFor(type).avg_power_w;
    }
  }
  return static_cast<float>(
      args.FlagDouble("avg-power", static_cast<double>(avg_power_w)));
}

int CmdServe(const Args& args) {
  if (args.positional.size() < 2 || args.Flag("appliance", "").empty()) {
    std::fprintf(stderr,
                 "usage: camal_cli serve <model_dir> <data_dir> --appliance "
                 "NAME [--window 128] [--workers 0] [--queue 0] "
                 "[--coalesce 8] [--avg-power 800] [--session-chunk 0] "
                 "[--store 1] [--checkpoint-dir DIR] "
                 "[--checkpoint-interval 30]\n");
    return 1;
  }
  auto ensemble_result = core::LoadEnsemble(args.positional[0]);
  if (!ensemble_result.ok()) return Fail(ensemble_result.status());
  core::CamalEnsemble ensemble = std::move(ensemble_result).value();

  const bool use_store = args.FlagInt("store", 0) != 0;
  auto cohort_result = LoadServingCohort(args.positional[1], use_store);
  if (!cohort_result.ok()) return Fail(cohort_result.status());
  const std::vector<int>& house_ids = cohort_result.value().house_ids;
  const std::vector<data::SeriesView>& cohort = cohort_result.value().views;
  const std::string appliance = args.Flag("appliance", "");
  const float avg_power_w = ResolveAvgPowerW(args, appliance);

  serve::ServiceOptions service_opt;
  service_opt.workers = static_cast<int>(args.FlagInt("workers", 0));
  // This command submits the whole directory in one burst, so the queue
  // is unbounded by default — every house gets scanned. Pass --queue N to
  // bound admission and see the backpressure contract instead (overflow
  // requests are rejected with FailedPrecondition and reported below).
  service_opt.queue_capacity = args.FlagInt("queue", 0);
  // Cross-request coalescing: a worker drains up to N-1 queued requests
  // into one shared-GEMM scan. Results are bitwise-identical either way;
  // --coalesce 1 disables (per-request scans).
  service_opt.coalesce_budget = static_cast<int>(args.FlagInt("coalesce", 8));
  // Crash safety: with --checkpoint-dir, live sessions are periodically
  // snapshotted there (and flushed on Shutdown), and a snapshot left by a
  // previous run is restored right after Start — streams resume where
  // the crash cut them, bitwise-identical from there on.
  service_opt.checkpoint_dir = args.Flag("checkpoint-dir", "");
  service_opt.checkpoint_interval_seconds =
      args.FlagDouble("checkpoint-interval", 30.0);
  serve::Service service(service_opt);
  serve::BatchRunnerOptions runner;
  runner.stream.window_length = args.FlagInt("window", 128);
  runner.stream.stride = runner.stream.window_length / 2;
  runner.appliance_avg_power_w = avg_power_w;
  Status st = service.RegisterAppliance(appliance, &ensemble, runner);
  if (!st.ok()) return Fail(st);
  st = service.Start();
  if (!st.ok()) return Fail(st);
  if (!service_opt.checkpoint_dir.empty()) {
    Result<int64_t> restored =
        service.RestoreSessions(service_opt.checkpoint_dir);
    if (!restored.ok()) {
      // Graceful degradation: a corrupt snapshot is reported and the
      // service boots with fresh sessions instead of crashing.
      std::printf("checkpoint restore skipped: %s\n",
                  restored.status().ToString().c_str());
    } else if (restored.value() > 0) {
      std::printf("restored %lld session(s) from %s\n",
                  static_cast<long long>(restored.value()),
                  service_opt.checkpoint_dir.c_str());
    }
  }
  const std::string capacity =
      service_opt.queue_capacity > 0
          ? std::to_string(service_opt.queue_capacity)
          : "unbounded";
  std::printf("serving '%s' on %d workers (queue capacity %s), "
              "%zu households%s\n",
              appliance.c_str(), service.workers(), capacity.c_str(),
              cohort.size(),
              use_store ? " (mapped stores, zero-copy)" : "");

  // Streaming mode (--session-chunk N): one serve::Session per household,
  // its aggregate replayed in N-sample deltas as if the meter reported
  // live. Every append rescans only the windows the new tail touches, and
  // the final result is bitwise-identical to the one-shot scan below.
  const int64_t session_chunk = args.FlagInt("session-chunk", 0);
  std::vector<std::future<Result<serve::ScanResult>>> futures;
  futures.reserve(cohort.size());
  std::vector<std::shared_ptr<serve::Session>> sessions;
  if (session_chunk > 0) {
    sessions.reserve(cohort.size());
    for (size_t h = 0; h < cohort.size(); ++h) {
      serve::SessionOptions session_opt;
      session_opt.household_id = "house_" + std::to_string(house_ids[h]);
      // Every chunk of the replay is admitted up front; the session
      // serializer parks them, so the park must hold the whole backlog.
      session_opt.max_pending_appends = cohort[h].size() / session_chunk + 1;
      auto session_result = service.CreateSession(appliance, session_opt);
      if (!session_result.ok()) return Fail(session_result.status());
      sessions.push_back(std::move(session_result).value());
    }
    for (size_t h = 0; h < cohort.size(); ++h) {
      const data::SeriesView series = cohort[h];
      const int64_t n = series.size();
      std::future<Result<serve::ScanResult>> last;
      for (int64_t begin = 0; begin < n || begin == 0;
           begin += session_chunk) {
        const int64_t len = std::min(session_chunk, n - begin);
        last = sessions[h]->AppendReadings(series.data() + begin, len);
      }
      // Only the final append's future is harvested: it covers the whole
      // series, which is what the per-house report wants. The sessions
      // close after the harvest — closing now would fail the parked
      // appends behind the one in flight.
      futures.push_back(std::move(last));
    }
  } else {
    // The async path end to end: submit every household, then harvest the
    // futures in admission order and report per-request latency.
    for (size_t h = 0; h < cohort.size(); ++h) {
      serve::ScanRequest request;
      request.household_id = "house_" + std::to_string(house_ids[h]);
      request.appliance = appliance;
      request.series = cohort[h];
      futures.push_back(service.Submit(std::move(request)));
    }
  }
  double total_latency_s = 0.0;
  int64_t served = 0;
  for (size_t h = 0; h < cohort.size(); ++h) {
    Result<serve::ScanResult> result = futures[h].get();
    if (!result.ok()) {
      std::printf("house %-3d: rejected: %s\n", house_ids[h],
                  result.status().ToString().c_str());
      continue;
    }
    const serve::ScanResult& scan = result.value();
    int64_t on_samples = 0;
    for (int64_t t = 0; t < scan.status.numel(); ++t) {
      on_samples += scan.status.at(t) > 0.5f ? 1 : 0;
    }
    // In streaming mode the harvested result is the LAST append: report
    // the windows covering the whole series (windows_full), not the
    // handful the incremental tail rescan actually fed.
    std::printf("house %-3d: %6lld windows, %6lld samples ON, "
                "latency %8.1f ms (%.0f windows/s)\n",
                house_ids[h],
                static_cast<long long>(session_chunk > 0 ? scan.windows_full
                                                         : scan.windows),
                static_cast<long long>(on_samples),
                scan.latency_seconds * 1e3, scan.WindowsPerSecond());
    total_latency_s += scan.latency_seconds;
    ++served;
  }
  for (auto& session : sessions) {
    Status closed = session->Close();
    if (!closed.ok()) return Fail(closed);
  }
  const serve::ServiceStats stats = service.stats();
  if (session_chunk > 0) {
    std::printf("sessions: %lld created, %lld closed, %lld appends "
                "(%lld readings), %lld windows saved vs full rescans\n",
                static_cast<long long>(stats.sessions_created),
                static_cast<long long>(stats.sessions_closed),
                static_cast<long long>(stats.session_appends),
                static_cast<long long>(stats.appended_readings),
                static_cast<long long>(stats.incremental_windows_saved));
  }
  std::printf("served %lld/%zu requests, mean latency %.1f ms "
              "(%lld rejected invalid, %lld rejected by backpressure)\n",
              static_cast<long long>(served), cohort.size(),
              served > 0 ? total_latency_s * 1e3 / served : 0.0,
              static_cast<long long>(stats.rejected_invalid),
              static_cast<long long>(stats.rejected_backpressure));
  if (stats.coalesced_groups > 0) {
    std::printf("coalescing: %lld requests served in %lld shared scans "
                "(mean occupancy %.1f)\n",
                static_cast<long long>(stats.coalesced_requests),
                static_cast<long long>(stats.coalesced_groups),
                static_cast<double>(stats.coalesced_requests) /
                    static_cast<double>(stats.coalesced_groups));
  }
  service.Shutdown();  // flushes a final session snapshot if checkpointing
  if (!service_opt.checkpoint_dir.empty()) {
    const serve::ServiceStats final_stats = service.stats();
    std::printf("checkpoints: %lld written (%lld failures), "
                "%lld session(s) restored, snapshot at %s\n",
                static_cast<long long>(final_stats.checkpoints_written),
                static_cast<long long>(final_stats.checkpoint_failures),
                static_cast<long long>(final_stats.sessions_restored),
                serve::Service::CheckpointFile(service_opt.checkpoint_dir)
                    .c_str());
  }
  return 0;
}

// Comma-separated doubles ("25,50,100") -> vector, for the --rps ladder.
std::vector<double> ParseRates(const std::string& list) {
  std::vector<double> rates;
  std::string token;
  for (size_t i = 0; i <= list.size(); ++i) {
    if (i == list.size() || list[i] == ',') {
      if (!token.empty()) rates.push_back(std::atof(token.c_str()));
      token.clear();
    } else {
      token.push_back(list[i]);
    }
  }
  return rates;
}

int CmdLoadgen(const Args& args) {
  if (args.positional.size() < 2 || args.Flag("appliance", "").empty()) {
    std::fprintf(stderr,
                 "usage: camal_cli loadgen <model_dir> <data_dir> "
                 "--appliance NAME [--rps 25,50,100,200] [--seconds 1.0] "
                 "[--process poisson|fixed] [--deadline 0] "
                 "[--priority high|normal|low] [--seed 1] [--window 128] "
                 "[--workers 0] [--queue 0] [--coalesce 8] "
                 "[--avg-power 800] [--store 1]\n");
    return 1;
  }
  auto ensemble_result = core::LoadEnsemble(args.positional[0]);
  if (!ensemble_result.ok()) return Fail(ensemble_result.status());
  core::CamalEnsemble ensemble = std::move(ensemble_result).value();
  auto cohort_result = LoadServingCohort(args.positional[1],
                                         args.FlagInt("store", 0) != 0);
  if (!cohort_result.ok()) return Fail(cohort_result.status());
  const std::string appliance = args.Flag("appliance", "");

  serve::ServiceOptions service_opt;
  service_opt.workers = static_cast<int>(args.FlagInt("workers", 0));
  service_opt.queue_capacity = args.FlagInt("queue", 0);
  service_opt.coalesce_budget = static_cast<int>(args.FlagInt("coalesce", 8));
  serve::Service service(service_opt);
  serve::BatchRunnerOptions runner;
  runner.stream.window_length = args.FlagInt("window", 128);
  runner.stream.stride = runner.stream.window_length / 2;
  runner.appliance_avg_power_w = ResolveAvgPowerW(args, appliance);
  Status st = service.RegisterAppliance(appliance, &ensemble, runner);
  if (!st.ok()) return Fail(st);
  st = service.Start();
  if (!st.ok()) return Fail(st);

  loadgen::LoadSweepOptions sweep;
  sweep.offered_rps = ParseRates(args.Flag("rps", "25,50,100,200"));
  if (sweep.offered_rps.empty()) {
    return Fail(Status::InvalidArgument("--rps needs at least one rate"));
  }
  sweep.seconds_per_point = args.FlagDouble("seconds", 1.0);
  sweep.base.appliance = appliance;
  sweep.base.seed = static_cast<uint64_t>(args.FlagInt("seed", 1));
  sweep.base.process = args.Flag("process", "poisson") == "fixed"
                           ? loadgen::ArrivalProcess::kFixedRate
                           : loadgen::ArrivalProcess::kPoisson;
  sweep.base.deadline_seconds = args.FlagDouble("deadline", 0.0);
  const std::string priority = args.Flag("priority", "normal");
  sweep.base.priority = priority == "high"
                            ? serve::RequestPriority::kHigh
                            : (priority == "low"
                                   ? serve::RequestPriority::kLow
                                   : serve::RequestPriority::kNormal);

  std::printf("open-loop sweep: '%s' on %d workers, %zu households, %s "
              "arrivals, %.1fs per point\n",
              appliance.c_str(), service.workers(),
              cohort_result.value().views.size(),
              sweep.base.process == loadgen::ArrivalProcess::kPoisson
                  ? "poisson"
                  : "fixed",
              sweep.seconds_per_point);
  const loadgen::LoadSweepResult result =
      loadgen::RunLoadSweep(&service, cohort_result.value().views, sweep);
  std::printf("%10s %10s %6s %8s %8s %8s %8s %6s %6s\n", "offered", "achieved",
              "util", "p50ms", "p95ms", "p99ms", "maxms", "shed", "rej");
  for (const loadgen::LoadSweepPoint& point : result.points) {
    std::printf("%10.1f %10.1f %6.2f %8.2f %8.2f %8.2f %8.2f %6lld %6lld\n",
                point.offered_rps, point.achieved_rps, point.utilization,
                point.latency.p50_ms, point.latency.p95_ms,
                point.latency.p99_ms, point.latency.max_ms,
                static_cast<long long>(point.shed_deadline),
                static_cast<long long>(point.rejected_backpressure));
  }
  std::printf("knee: %.1f rps (%s)\n", result.knee_rps,
              result.knee_basis.c_str());
  const serve::ServiceStats stats = service.stats();
  std::printf("service: %lld completed (%lld high / %lld normal / %lld "
              "low), %lld shed on deadline, %lld backpressure\n",
              static_cast<long long>(stats.completed),
              static_cast<long long>(stats.completed_high),
              static_cast<long long>(stats.completed_normal),
              static_cast<long long>(stats.completed_low),
              static_cast<long long>(stats.shed_deadline),
              static_cast<long long>(stats.rejected_backpressure));
  service.Shutdown();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: camal_cli "
                 "<simulate|train|localize|serve|convert|loadgen> ...\n");
    return 1;
  }
  const Args args = ParseArgs(argc, argv);
  const std::string command = argv[1];
  if (command == "simulate") return CmdSimulate(args);
  if (command == "train") return CmdTrain(args);
  if (command == "localize") return CmdLocalize(args);
  if (command == "serve") return CmdServe(args);
  if (command == "convert") return CmdConvert(args);
  if (command == "loadgen") return CmdLoadgen(args);
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return 1;
}
