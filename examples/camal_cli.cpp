// camal_cli — train, persist, and apply CamAL models from the command line
// on CSV smart-meter data (the workflow an electricity supplier would run).
//
// Commands:
//   camal_cli simulate <dir> [--profile NAME] [--scale S] [--seed N]
//       Simulate a cohort and export it as house_*.csv files.
//   camal_cli train <data_dir> <model_dir> --appliance NAME
//       [--window L] [--epochs E] [--members N] [--filters F] [--seed N]
//       Train a CamAL ensemble on weak labels derived from the submeter
//       columns and save it.
//   camal_cli localize <model_dir> <house.csv> --appliance NAME [--window L]
//       Load a saved ensemble and print per-window detections and the
//       localized activation timeline for one household.
//   camal_cli serve <model_dir> <data_dir> --appliance NAME [--window L]
//       [--workers N] [--queue N] [--avg-power W]
//       Load a saved ensemble, start the asynchronous serve::Service, scan
//       every house_*.csv through the request queue, and print
//       per-request latency.

#include <cstdio>
#include <cstring>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel_for.h"
#include "data/balance.h"
#include "data/csv_loader.h"
#include "data/split.h"
#include "core/localizer.h"
#include "core/model_io.h"
#include "serve/service.h"
#include "simulate/profiles.h"

namespace {

using namespace camal;

// Minimal flag parser: positional args plus --key value pairs.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  std::string Flag(const std::string& key, const std::string& fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  double FlagDouble(const std::string& key, double fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atof(it->second.c_str());
  }
  int64_t FlagInt(const std::string& key, int64_t fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atoll(it->second.c_str());
  }
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0 && i + 1 < argc) {
      args.flags[argv[i] + 2] = argv[i + 1];
      ++i;
    } else {
      args.positional.push_back(argv[i]);
    }
  }
  return args;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

simulate::DatasetProfile ProfileByName(const std::string& name) {
  if (name == "ukdale") return simulate::UkdaleProfile();
  if (name == "ideal") return simulate::IdealProfile();
  if (name == "edf_ev") return simulate::EdfEvProfile();
  if (name == "edf_weak") return simulate::EdfWeakProfile();
  return simulate::RefitProfile();
}

int CmdSimulate(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "usage: camal_cli simulate <dir> [--profile refit]"
                         " [--scale 0.3] [--seed 1]\n");
    return 1;
  }
  const auto profile = ProfileByName(args.Flag("profile", "refit"));
  auto houses = simulate::SimulateDataset(
      profile, args.FlagDouble("scale", 0.3),
      static_cast<uint64_t>(args.FlagInt("seed", 1)));
  (void)std::system(("mkdir -p " + args.positional[0]).c_str());
  for (const auto& house : houses) {
    char name[64];
    std::snprintf(name, sizeof(name), "/house_%03d.csv", house.house_id);
    Status st = data::WriteHouseCsv(house, args.positional[0] + name);
    if (!st.ok()) return Fail(st);
  }
  std::printf("wrote %zu houses (%s profile) to %s\n", houses.size(),
              profile.name.c_str(), args.positional[0].c_str());
  return 0;
}

int CmdTrain(const Args& args) {
  if (args.positional.size() < 2 || args.Flag("appliance", "").empty()) {
    std::fprintf(stderr,
                 "usage: camal_cli train <data_dir> <model_dir> --appliance "
                 "NAME [--window 128] [--epochs 8] [--members 3] "
                 "[--filters 16] [--seed 7]\n");
    return 1;
  }
  auto houses_result = data::LoadDatasetDir(args.positional[0]);
  if (!houses_result.ok()) return Fail(houses_result.status());
  auto houses = std::move(houses_result).value();
  std::printf("loaded %zu houses from %s\n", houses.size(),
              args.positional[0].c_str());

  data::ApplianceSpec spec;
  spec.name = args.Flag("appliance", "");
  // Look the spec up from the built-in Table I; unknown names use generic
  // thresholds.
  spec.on_threshold_w = 300.0f;
  spec.avg_power_w = 800.0f;
  for (auto type : {simulate::ApplianceType::kDishwasher,
                    simulate::ApplianceType::kKettle,
                    simulate::ApplianceType::kMicrowave,
                    simulate::ApplianceType::kWashingMachine,
                    simulate::ApplianceType::kShower,
                    simulate::ApplianceType::kElectricVehicle}) {
    if (simulate::ApplianceName(type) == spec.name) {
      spec = simulate::SpecFor(type);
    }
  }

  const auto seed = static_cast<uint64_t>(args.FlagInt("seed", 7));
  Rng rng(seed);
  const auto n = static_cast<int64_t>(houses.size());
  auto split_result = data::SplitHouses(
      houses, std::max<int64_t>(1, n / 5), 0, &rng);
  if (!split_result.ok()) return Fail(split_result.status());
  data::BuildOptions opt;
  opt.window_length = args.FlagInt("window", 128);
  auto train = data::BuildWindowDataset(split_result.value().train, spec, opt);
  auto valid = data::BuildWindowDataset(split_result.value().valid, spec, opt);
  if (!train.ok()) return Fail(train.status());
  if (!valid.ok()) return Fail(valid.status());
  data::WindowDataset balanced =
      data::BalanceByWeakLabel(train.value(), &rng);
  std::printf("training on %lld balanced windows (%lld weak labels)\n",
              static_cast<long long>(balanced.size()),
              static_cast<long long>(balanced.size()));

  core::EnsembleConfig config;
  config.kernel_sizes = {5, 9, 15};
  config.trials_per_kernel = 1;
  config.ensemble_size = static_cast<int>(args.FlagInt("members", 3));
  config.base_filters = args.FlagInt("filters", 16);
  config.train.max_epochs = static_cast<int>(args.FlagInt("epochs", 8));
  auto ensemble = core::CamalEnsemble::Train(balanced, valid.value(), config,
                                             seed);
  if (!ensemble.ok()) return Fail(ensemble.status());
  Status st = core::SaveEnsemble(ensemble.value(), args.positional[1]);
  if (!st.ok()) return Fail(st);
  std::printf("saved %zu-member ensemble (%lld parameters) to %s\n",
              ensemble.value().members().size(),
              static_cast<long long>(ensemble.value().NumParameters()),
              args.positional[1].c_str());
  return 0;
}

int CmdLocalize(const Args& args) {
  if (args.positional.size() < 2) {
    std::fprintf(stderr, "usage: camal_cli localize <model_dir> <house.csv> "
                         "--appliance NAME [--window 128]\n");
    return 1;
  }
  auto ensemble_result = core::LoadEnsemble(args.positional[0]);
  if (!ensemble_result.ok()) return Fail(ensemble_result.status());
  core::CamalEnsemble ensemble = std::move(ensemble_result).value();
  auto house_result = data::LoadHouseCsv(args.positional[1], 1);
  if (!house_result.ok()) return Fail(house_result.status());
  const data::HouseRecord& house = house_result.value();

  data::ApplianceSpec spec;
  spec.name = args.Flag("appliance", "appliance");
  data::BuildOptions opt;
  opt.window_length = args.FlagInt("window", 128);
  opt.possession_labels = true;  // no submeter needed to localize
  auto windows_result = data::BuildWindowDataset({house}, spec, opt);
  if (!windows_result.ok()) return Fail(windows_result.status());
  const data::WindowDataset& windows = windows_result.value();

  core::CamalLocalizer localizer(&ensemble);
  core::LocalizationResult result = localizer.Localize(windows.inputs);
  int64_t detected = 0, on_samples = 0;
  for (int64_t i = 0; i < windows.size(); ++i) {
    const bool present = result.probabilities.at(i) > 0.5f;
    detected += present;
    int64_t window_on = 0;
    for (int64_t t = 0; t < windows.window_length; ++t) {
      window_on += result.status.at2(i, t) > 0.5f ? 1 : 0;
    }
    on_samples += window_on;
    if (present) {
      std::printf("window %4lld: P(%s)=%.2f, %lld/%lld timestamps ON\n",
                  static_cast<long long>(i), spec.name.c_str(),
                  result.probabilities.at(i),
                  static_cast<long long>(window_on),
                  static_cast<long long>(windows.window_length));
    }
  }
  std::printf("summary: detected in %lld/%lld windows; ~%.1f hours of use\n",
              static_cast<long long>(detected),
              static_cast<long long>(windows.size()),
              static_cast<double>(on_samples) * house.interval_seconds /
                  3600.0);
  return 0;
}

int CmdServe(const Args& args) {
  if (args.positional.size() < 2 || args.Flag("appliance", "").empty()) {
    std::fprintf(stderr,
                 "usage: camal_cli serve <model_dir> <data_dir> --appliance "
                 "NAME [--window 128] [--workers 0] [--queue 0] "
                 "[--coalesce 8] [--avg-power 800] [--session-chunk 0]\n");
    return 1;
  }
  auto ensemble_result = core::LoadEnsemble(args.positional[0]);
  if (!ensemble_result.ok()) return Fail(ensemble_result.status());
  core::CamalEnsemble ensemble = std::move(ensemble_result).value();
  auto houses_result = data::LoadDatasetDir(args.positional[1]);
  if (!houses_result.ok()) return Fail(houses_result.status());
  const auto houses = std::move(houses_result).value();
  const std::string appliance = args.Flag("appliance", "");

  float avg_power_w = 800.0f;
  for (auto type : {simulate::ApplianceType::kDishwasher,
                    simulate::ApplianceType::kKettle,
                    simulate::ApplianceType::kMicrowave,
                    simulate::ApplianceType::kWashingMachine,
                    simulate::ApplianceType::kShower,
                    simulate::ApplianceType::kElectricVehicle}) {
    if (simulate::ApplianceName(type) == appliance) {
      avg_power_w = simulate::SpecFor(type).avg_power_w;
    }
  }
  avg_power_w = static_cast<float>(
      args.FlagDouble("avg-power", static_cast<double>(avg_power_w)));

  serve::ServiceOptions service_opt;
  service_opt.workers = static_cast<int>(args.FlagInt("workers", 0));
  // This command submits the whole directory in one burst, so the queue
  // is unbounded by default — every house gets scanned. Pass --queue N to
  // bound admission and see the backpressure contract instead (overflow
  // requests are rejected with FailedPrecondition and reported below).
  service_opt.queue_capacity = args.FlagInt("queue", 0);
  // Cross-request coalescing: a worker drains up to N-1 queued requests
  // into one shared-GEMM scan. Results are bitwise-identical either way;
  // --coalesce 1 disables (per-request scans).
  service_opt.coalesce_budget = static_cast<int>(args.FlagInt("coalesce", 8));
  serve::Service service(service_opt);
  serve::BatchRunnerOptions runner;
  runner.stream.window_length = args.FlagInt("window", 128);
  runner.stream.stride = runner.stream.window_length / 2;
  runner.appliance_avg_power_w = avg_power_w;
  Status st = service.RegisterAppliance(appliance, &ensemble, runner);
  if (!st.ok()) return Fail(st);
  st = service.Start();
  if (!st.ok()) return Fail(st);
  const std::string capacity =
      service_opt.queue_capacity > 0
          ? std::to_string(service_opt.queue_capacity)
          : "unbounded";
  std::printf("serving '%s' on %d workers (queue capacity %s), "
              "%zu households\n",
              appliance.c_str(), service.workers(), capacity.c_str(),
              houses.size());

  // Streaming mode (--session-chunk N): one serve::Session per household,
  // its aggregate replayed in N-sample deltas as if the meter reported
  // live. Every append rescans only the windows the new tail touches, and
  // the final result is bitwise-identical to the one-shot scan below.
  const int64_t session_chunk = args.FlagInt("session-chunk", 0);
  std::vector<std::future<Result<serve::ScanResult>>> futures;
  futures.reserve(houses.size());
  std::vector<std::shared_ptr<serve::Session>> sessions;
  if (session_chunk > 0) {
    sessions.reserve(houses.size());
    for (const data::HouseRecord& house : houses) {
      serve::SessionOptions session_opt;
      session_opt.household_id = "house_" + std::to_string(house.house_id);
      // Every chunk of the replay is admitted up front; the session
      // serializer parks them, so the park must hold the whole backlog.
      session_opt.max_pending_appends =
          static_cast<int64_t>(house.aggregate.size()) / session_chunk + 1;
      auto session_result = service.CreateSession(appliance, session_opt);
      if (!session_result.ok()) return Fail(session_result.status());
      sessions.push_back(std::move(session_result).value());
    }
    for (size_t h = 0; h < houses.size(); ++h) {
      const std::vector<float>& series = houses[h].aggregate;
      const auto n = static_cast<int64_t>(series.size());
      std::future<Result<serve::ScanResult>> last;
      for (int64_t begin = 0; begin < n || begin == 0;
           begin += session_chunk) {
        const int64_t len = std::min(session_chunk, n - begin);
        last = sessions[h]->AppendReadings(series.data() + begin, len);
      }
      // Only the final append's future is harvested: it covers the whole
      // series, which is what the per-house report wants. The sessions
      // close after the harvest — closing now would fail the parked
      // appends behind the one in flight.
      futures.push_back(std::move(last));
    }
  } else {
    // The async path end to end: submit every household, then harvest the
    // futures in admission order and report per-request latency.
    for (const data::HouseRecord& house : houses) {
      serve::ScanRequest request;
      request.household_id = "house_" + std::to_string(house.house_id);
      request.appliance = appliance;
      request.series = &house.aggregate;
      futures.push_back(service.Submit(std::move(request)));
    }
  }
  double total_latency_s = 0.0;
  int64_t served = 0;
  for (size_t h = 0; h < houses.size(); ++h) {
    Result<serve::ScanResult> result = futures[h].get();
    if (!result.ok()) {
      std::printf("house %-3d: rejected: %s\n", houses[h].house_id,
                  result.status().ToString().c_str());
      continue;
    }
    const serve::ScanResult& scan = result.value();
    int64_t on_samples = 0;
    for (int64_t t = 0; t < scan.status.numel(); ++t) {
      on_samples += scan.status.at(t) > 0.5f ? 1 : 0;
    }
    // In streaming mode the harvested result is the LAST append: report
    // the windows covering the whole series (windows_full), not the
    // handful the incremental tail rescan actually fed.
    std::printf("house %-3d: %6lld windows, %6lld samples ON, "
                "latency %8.1f ms (%.0f windows/s)\n",
                houses[h].house_id,
                static_cast<long long>(session_chunk > 0 ? scan.windows_full
                                                         : scan.windows),
                static_cast<long long>(on_samples),
                scan.latency_seconds * 1e3, scan.WindowsPerSecond());
    total_latency_s += scan.latency_seconds;
    ++served;
  }
  for (auto& session : sessions) {
    Status closed = session->Close();
    if (!closed.ok()) return Fail(closed);
  }
  const serve::ServiceStats stats = service.stats();
  if (session_chunk > 0) {
    std::printf("sessions: %lld created, %lld closed, %lld appends "
                "(%lld readings), %lld windows saved vs full rescans\n",
                static_cast<long long>(stats.sessions_created),
                static_cast<long long>(stats.sessions_closed),
                static_cast<long long>(stats.session_appends),
                static_cast<long long>(stats.appended_readings),
                static_cast<long long>(stats.incremental_windows_saved));
  }
  std::printf("served %lld/%zu requests, mean latency %.1f ms "
              "(%lld rejected invalid, %lld rejected by backpressure)\n",
              static_cast<long long>(served), houses.size(),
              served > 0 ? total_latency_s * 1e3 / served : 0.0,
              static_cast<long long>(stats.rejected_invalid),
              static_cast<long long>(stats.rejected_backpressure));
  if (stats.coalesced_groups > 0) {
    std::printf("coalescing: %lld requests served in %lld shared scans "
                "(mean occupancy %.1f)\n",
                static_cast<long long>(stats.coalesced_requests),
                static_cast<long long>(stats.coalesced_groups),
                static_cast<double>(stats.coalesced_requests) /
                    static_cast<double>(stats.coalesced_groups));
  }
  service.Shutdown();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: camal_cli <simulate|train|localize|serve> ...\n");
    return 1;
  }
  const Args args = ParseArgs(argc, argv);
  const std::string command = argv[1];
  if (command == "simulate") return CmdSimulate(args);
  if (command == "train") return CmdTrain(args);
  if (command == "localize") return CmdLocalize(args);
  if (command == "serve") return CmdServe(args);
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return 1;
}
